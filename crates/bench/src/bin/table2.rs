//! Reproduces **Table 2**: correctly rounded results for posit32 —
//! RLIBM-32 vs re-purposed double libraries (glibc/Intel double and
//! CR-LIBM all share the same failure mode for posits: no saturation).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin table2 [count]`
//! (default 40000 posit32 patterns per function).

use rlibm_core::par::num_threads;
use rlibm_core::validate::{stratified_posit32, validate_par, ValidationReport};
use rlibm_mp::Func;
use rlibm_posit::Posit32;

fn mark(r: &ValidationReport, scale: f64) -> String {
    if r.wrong == 0 {
        "ok".to_string()
    } else {
        format!("X({} | ~{:.1e} full)", r.wrong, r.wrong as f64 * scale)
    }
}

fn main() {
    let count: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let xs = stratified_posit32(count, 0xBEEF);
    let scale = 2f64.powi(32) / xs.len() as f64;
    let threads = num_threads();
    println!("Table 2: correctly rounded results for posit32");
    println!("  sample: {} posit patterns/function\n", xs.len());
    println!(
        "{:>8} | {:>12} | {:>24}",
        "posit fn", "RLIBM-32", "double-libm (repurposed)"
    );
    println!("{}", "-".repeat(52));
    for f in Func::POSIT {
        let name = f.name();
        let ours = validate_par(
            f,
            |x: Posit32| rlibm_math::eval_posit32_by_name(name, x).expect("known name"),
            &xs,
            threads,
        );
        let dbl = validate_par(
            f,
            |x: Posit32| rlibm_math::baselines::double64::to_posit32(name, x),
            &xs,
            threads,
        );
        println!(
            "{:>8} | {:>12} | {:>24}",
            name,
            mark(&ours, scale),
            mark(&dbl, scale)
        );
        assert_eq!(
            ours.wrong, 0,
            "RLIBM-32 posit column must be clean; first failure: {:?}",
            ours.examples.first()
        );
    }
    println!(
        "\nThe double-library column fails mainly on posit saturation\n\
         (exp/sinh/cosh overflow to inf -> NaR instead of maxpos, underflow\n\
         to 0 instead of minpos) — the paper reports X(4.4E8)-scale counts."
    );
}
