//! The Section 4.3 vectorization-style harness: arrays of 1024 inputs
//! evaluated in a tight loop (the paper's second measurement methodology,
//! built to expose what auto-vectorizing compilers gain). Prints ns/call
//! for our functions and the baselines under this batched regime.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin vector_harness`

use rlibm_bench::timing::ns_per_call;
use rlibm_bench::workloads::timing_inputs_f32;
use rlibm_mp::Func;

fn main() {
    const BATCH: usize = 1024; // the paper's array size
    println!("Vectorization harness: arrays of {BATCH} inputs\n");
    println!(
        "{:>8} | {:>12} | {:>16}",
        "float fn", "RLIBM (ns)", "float-libm (ns)"
    );
    println!("{}", "-".repeat(42));
    for f in Func::ALL {
        let name = f.name();
        let xs = timing_inputs_f32(name, BATCH, 45);
        // Batched evaluation: output array reused, loop over the batch is
        // inside the timed closure (auto-vectorization gets its chance).
        let mut out = vec![0.0f32; BATCH];
        let ours = {
            let xs = xs.clone();
            ns_per_call(&[0usize], 5, |_| {
                for (o, &x) in out.iter_mut().zip(&xs) {
                    *o = rlibm_math::eval_f32_by_name(name, x);
                }
                out[0]
            }) / BATCH as f64
        };
        let mut out2 = vec![0.0f32; BATCH];
        let base = {
            let xs = xs.clone();
            ns_per_call(&[0usize], 5, |_| {
                for (o, &x) in out2.iter_mut().zip(&xs) {
                    *o = match name {
                        "ln" => rlibm_math::baselines::float32::ln(x),
                        "log2" => rlibm_math::baselines::float32::log2(x),
                        "log10" => rlibm_math::baselines::float32::log10(x),
                        "exp" => rlibm_math::baselines::float32::exp(x),
                        "exp2" => rlibm_math::baselines::float32::exp2(x),
                        "exp10" => rlibm_math::baselines::float32::exp10(x),
                        "sinh" => rlibm_math::baselines::float32::sinh(x),
                        "cosh" => rlibm_math::baselines::float32::cosh(x),
                        "sinpi" => rlibm_math::baselines::float32::sinpi(x),
                        "cospi" => rlibm_math::baselines::float32::cospi(x),
                        _ => unreachable!(),
                    };
                }
                out2[0]
            }) / BATCH as f64
        };
        println!("{:>8} | {:>12.2} | {:>16.2}", name, ours, base);
    }
    println!(
        "\nThe paper found RLIBM-32 within 5-10% of Intel's auto-vectorized\n\
         code while producing correct results for all inputs."
    );
}
