//! The Section 4.3 vectorization-style harness: arrays of 1024 inputs
//! evaluated in a tight loop (the paper's second measurement methodology,
//! built to expose what batch-oriented evaluation gains). Compares
//! three regimes per function:
//!
//! * `scalar loop` — the two-tier scalar function called per element;
//! * `eval_slice`  — the structure-of-arrays batched API
//!   ([`rlibm_math::eval_slice_f32`]), which stages reduction, table
//!   lookup and Horner evaluation across the batch;
//! * `float-libm`  — the float baseline called per element.
//!
//! Emits `BENCH_vector.json` (schema `rlibm-bench/vector/v2` — v2 adds
//! the packed/unpacked table-footprint section — re-parsed and
//! schema-checked before exit).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin vector_harness -- \
//!             [--quick] [--out PATH]`

use rlibm_bench::json::{write_validated, Json};
use rlibm_bench::timing::{fmt_speedup, geomean, ns_per_call};
use rlibm_bench::workloads::timing_inputs_f32;
use rlibm_mp::Func;

pub const SCHEMA: &str = "rlibm-bench/vector/v2";
pub const PER_FN_FIELDS: &[&str] = &["ns_scalar", "ns_batched", "ns_float_libm"];

fn main() {
    const BATCH: usize = 1024; // the paper's array size
    let mut reps = 5usize;
    let mut quick = false;
    let mut out_path = "BENCH_vector.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                quick = true;
                reps = 2;
            }
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => panic!("bad arg '{other}'"),
        }
    }
    println!(
        "Vectorization harness: arrays of {BATCH} inputs{}\n",
        if quick { " (quick mode)" } else { "" }
    );
    println!(
        "{:>8} | {:>16} | {:>15} | {:>15} | {:>14}",
        "float fn", "scalar loop (ns)", "eval_slice (ns)", "float-libm (ns)", "batched/scalar"
    );
    println!("{}", "-".repeat(80));
    // Timings are taken as the min over `reps` full passes of the whole
    // sweep (each pass measures every function once), not `reps`
    // back-to-back sweeps of one function: on shared hosts, slowdown
    // windows last seconds, and interleaving keeps one window from
    // poisoning every repetition of a single row.
    let mut best = vec![[f64::INFINITY; 3]; Func::ALL.len()];
    for _ in 0..reps {
        for (fi, f) in Func::ALL.iter().enumerate() {
            let name = f.name();
            let xs = timing_inputs_f32(name, BATCH, 45);
            let scalar_fn = rlibm_math::f32_fn_by_name(name).expect("known name");
            let mut out = vec![0.0f32; BATCH];
            let scalar = ns_per_call(&[0usize], 2, |_| {
                for (o, &x) in out.iter_mut().zip(&xs) {
                    *o = scalar_fn(x);
                }
                out[0]
            }) / BATCH as f64;
            let batched = ns_per_call(&[0usize], 2, |_| {
                rlibm_math::eval_slice_f32(name, &xs, &mut out).expect("known name");
                out[0]
            }) / BATCH as f64;
            let base_fn = rlibm_math::baseline_f32_fn_by_name(name).expect("known name");
            let base = ns_per_call(&[0usize], 2, |_| {
                for (o, &x) in out.iter_mut().zip(&xs) {
                    *o = base_fn(x);
                }
                out[0]
            }) / BATCH as f64;
            let b = &mut best[fi];
            b[0] = b[0].min(scalar);
            b[1] = b[1].min(batched);
            b[2] = b[2].min(base);
        }
    }
    let mut s_b = Vec::new();
    let mut rows = Vec::new();
    for (fi, f) in Func::ALL.iter().enumerate() {
        let name = f.name();
        let [scalar, batched, base] = best[fi];
        s_b.push(scalar / batched);
        println!(
            "{:>8} | {:>16.2} | {:>15.2} | {:>15.2} | {:>14}",
            name,
            scalar,
            batched,
            base,
            fmt_speedup(scalar / batched)
        );
        rows.push(
            Json::obj()
                .set("name", name)
                .set("ns_scalar", scalar)
                .set("ns_batched", batched)
                .set("ns_float_libm", base),
        );
    }
    println!("{}", "-".repeat(80));
    println!(
        "{:>8} | {:>16} | {:>15} | {:>15} | {:>14}",
        "geomean",
        "",
        "",
        "",
        fmt_speedup(geomean(&s_b))
    );
    println!(
        "\nThe paper found RLIBM-32 within 5-10% of Intel's auto-vectorized\n\
         code while producing correct results for all inputs; here the\n\
         staged eval_slice path is what batching buys over the scalar loop."
    );

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", quick)
        .set("n_inputs", BATCH as f64)
        .set(
            "tables",
            Json::obj()
                .set("bytes_packed", rlibm_math::tables::TABLE_BYTES_PACKED as f64)
                .set("bytes_unpacked", rlibm_math::tables::TABLE_BYTES_UNPACKED as f64),
        )
        .set("functions", rows)
        .set("geomean", Json::obj().set("batched_vs_scalar", geomean(&s_b)));
    write_validated(&out_path, &doc, SCHEMA, PER_FN_FIELDS).expect("write BENCH json");
    println!("\nwrote {out_path} (schema {SCHEMA}, parsed + validated)");
}
