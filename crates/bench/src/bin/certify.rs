//! Exhaustive 2^32 certification sweep — the paper's all-inputs claim as
//! a checked, committed artifact.
//!
//! Drives [`rlibm_core::certify`] over every tier-1 function: for each
//! u32 bit pattern the two-tier fast path is bit-compared against the
//! dd-only reference, and a budgeted subset of shards is spot-checked
//! against the Ziv oracle (dd vs oracle — the other half of the
//! certification argument). Per-function progress persists in tmp+rename
//! checkpoint files under `--state-dir`, so a killed run resumes at
//! shard granularity and coverage accumulates across invocations; the
//! accumulated state renders into `CERT_manifest.json`
//! (schema `rlibm-cert/v1`, re-parsed and schema-checked on emission).
//!
//! Usage: `cargo run -p rlibm-bench --release --bin certify -- \
//!             [--funcs ln,exp,...] [--kinds float32,posit32] \
//!             [--shard-bits N] [--max-shards N] [--oracle-stride N] \
//!             [--oracle-samples N] [--state-dir DIR] [--out PATH] \
//!             [--quick] [--check PATH]`
//!
//! `--quick` is the CI smoke mode: small shards over the special-value
//! regions of every function (fresh state each run). `--check PATH`
//! validates a committed manifest — schema, registry agreement, internal
//! consistency, canonical formatting — without sweeping.
//!
//! Exits nonzero on any recorded mismatch, so CI fails the moment a
//! sweep finds an incorrectly rounded input.

use std::path::{Path, PathBuf};
use std::time::Instant;

use rlibm_bench::json::{check_bench_schema, parse, write_validated, Json};
use rlibm_core::certify::{sweep_shard, CertState, OracleBudget, DEFAULT_SHARD_BITS};
use rlibm_mp::{correctly_rounded, Func};
use rlibm_posit::Posit32;

pub const SCHEMA: &str = "rlibm-cert/v1";
pub const PER_FN_FIELDS: &[&str] = &[
    "shard_bits",
    "shards_total",
    "shards_done",
    "inputs_checked",
    "mismatches",
    "first_mismatch",
    "oracle_checked",
    "oracle_mismatches",
    "first_oracle_mismatch",
];

/// Fixed base seed for the oracle spot-check sampler: reruns draw the
/// same sample set, so oracle coverage is reproducible.
const ORACLE_SEED: u64 = 0xCE27_2021;

/// Canonical NaN policy: every NaN output (the payload is a don't-care
/// in the two-tier contract) compares as the quiet NaN bit pattern.
fn f32_bits_fn(f: fn(f32) -> f32) -> impl Fn(u32) -> u32 + Sync {
    move |b| {
        let y = f(f32::from_bits(b));
        if y.is_nan() {
            0x7FC0_0000
        } else {
            y.to_bits()
        }
    }
}

fn posit_bits_fn(f: fn(Posit32) -> Posit32) -> impl Fn(u32) -> u32 + Sync {
    move |b| f(Posit32::from_bits(b)).to_bits()
}

/// The two representation kinds under certification.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Float32,
    Posit32,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Float32 => "float32",
            Kind::Posit32 => "posit32",
        }
    }

    fn funcs(self) -> &'static [Func] {
        match self {
            Kind::Float32 => &Func::ALL,
            Kind::Posit32 => &Func::POSIT,
        }
    }

    /// Quick-mode shard selection (shard_bits = 16): the top-16-bit
    /// prefixes of the special-value regions sampling historically
    /// under-weights — zero/subnormal, unity, overflow/NaN boundary,
    /// negative zero, negative infinity (NaR and saturation for posits).
    fn quick_shards(self) -> &'static [u32] {
        match self {
            Kind::Float32 => &[0x0000, 0x3F80, 0x7F80, 0x8000, 0xFF80],
            Kind::Posit32 => &[0x0000, 0x4000, 0x7FFF, 0x8000, 0xC000],
        }
    }
}

struct Cli {
    funcs: Option<Vec<String>>,
    kinds: Vec<Kind>,
    shard_bits: u32,
    max_shards: Option<usize>,
    oracle_stride: u32,
    oracle_samples: u32,
    state_dir: PathBuf,
    out: String,
    quick: bool,
    check: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        funcs: None,
        kinds: vec![Kind::Float32, Kind::Posit32],
        shard_bits: DEFAULT_SHARD_BITS,
        max_shards: None,
        oracle_stride: 8,
        oracle_samples: 64,
        state_dir: PathBuf::from("target/certify"),
        out: "CERT_manifest.json".to_string(),
        quick: false,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--funcs" => {
                cli.funcs =
                    Some(need(&mut args, "--funcs").split(',').map(str::to_string).collect())
            }
            "--kinds" => {
                cli.kinds = need(&mut args, "--kinds")
                    .split(',')
                    .map(|k| match k {
                        "float32" => Kind::Float32,
                        "posit32" => Kind::Posit32,
                        other => panic!("unknown kind '{other}' (float32|posit32)"),
                    })
                    .collect()
            }
            "--shard-bits" => {
                cli.shard_bits = need(&mut args, "--shard-bits").parse().expect("numeric shard-bits")
            }
            "--max-shards" => {
                cli.max_shards =
                    Some(need(&mut args, "--max-shards").parse().expect("numeric max-shards"))
            }
            "--oracle-stride" => {
                cli.oracle_stride =
                    need(&mut args, "--oracle-stride").parse().expect("numeric oracle-stride")
            }
            "--oracle-samples" => {
                cli.oracle_samples =
                    need(&mut args, "--oracle-samples").parse().expect("numeric oracle-samples")
            }
            "--state-dir" => cli.state_dir = PathBuf::from(need(&mut args, "--state-dir")),
            "--out" => cli.out = need(&mut args, "--out"),
            "--quick" => {
                cli.quick = true;
                cli.shard_bits = 16;
                cli.oracle_stride = 1;
                cli.oracle_samples = 16;
                cli.state_dir = PathBuf::from("target/bench-smoke/certify-state");
            }
            "--check" => cli.check = Some(need(&mut args, "--check")),
            other => panic!("unknown argument '{other}'"),
        }
    }
    cli
}

/// Bit transfer closures for one (kind, function) pair.
struct Target {
    kind: Kind,
    func: Func,
    fast: Box<dyn Fn(u32) -> u32 + Sync>,
    reference: Box<dyn Fn(u32) -> u32 + Sync>,
    oracle: Box<dyn Fn(u32) -> u32 + Sync>,
}

fn targets(kinds: &[Kind], funcs: &Option<Vec<String>>) -> Vec<Target> {
    let mut out = Vec::new();
    for &kind in kinds {
        for &func in kind.funcs() {
            if let Some(sel) = funcs {
                if !sel.iter().any(|n| n == func.name()) {
                    continue;
                }
            }
            let t = match kind {
                Kind::Float32 => {
                    let fast = rlibm_math::f32_fn_by_name(func.name()).expect("registry name");
                    let dd = rlibm_math::f32_dd_fn_by_name(func.name()).expect("registry name");
                    Target {
                        kind,
                        func,
                        fast: Box::new(f32_bits_fn(fast)),
                        reference: Box::new(f32_bits_fn(dd)),
                        oracle: Box::new(move |b| {
                            let y = correctly_rounded::<f32>(func, f32::from_bits(b));
                            if y.is_nan() {
                                0x7FC0_0000
                            } else {
                                y.to_bits()
                            }
                        }),
                    }
                }
                Kind::Posit32 => {
                    let fast = rlibm_math::posit32_fn_by_name(func.name()).expect("registry name");
                    let dd = rlibm_math::posit32_dd_fn_by_name(func.name()).expect("registry name");
                    Target {
                        kind,
                        func,
                        fast: Box::new(posit_bits_fn(fast)),
                        reference: Box::new(posit_bits_fn(dd)),
                        oracle: Box::new(move |b| {
                            correctly_rounded::<Posit32>(func, Posit32::from_bits(b)).to_bits()
                        }),
                    }
                }
            };
            out.push(t);
        }
    }
    out
}

/// One function's sweep for this invocation: loads state, sweeps the
/// selected shards (checkpointing after every shard), returns the state.
fn run_target(t: &Target, cli: &Cli) -> CertState {
    let mut state =
        CertState::load_or_new(&cli.state_dir, t.func.name(), t.kind.name(), cli.shard_bits)
            .unwrap_or_else(|e| panic!("{e}"));
    let shards: Vec<u32> = if cli.quick {
        t.kind.quick_shards().iter().copied().filter(|s| state.verdict(*s).is_none()).collect()
    } else {
        let remaining = state.remaining();
        match cli.max_shards {
            Some(n) => remaining.into_iter().take(n).collect(),
            None => remaining,
        }
    };
    if shards.is_empty() {
        println!(
            "{:>8} {:<6} | up to date ({})",
            t.kind.name(),
            t.func.name(),
            state.summary().status()
        );
        return state;
    }
    let threads = rlibm_core::par::num_threads();
    let start = Instant::now();
    let mut swept = 0u64;
    for &shard in &shards {
        let budget;
        let oracle = if cli.oracle_stride > 0 && shard % cli.oracle_stride == 0 {
            budget = OracleBudget {
                oracle: t.oracle.as_ref(),
                samples: cli.oracle_samples,
                seed: ORACLE_SEED,
            };
            Some(&budget)
        } else {
            None
        };
        let v = sweep_shard(shard, cli.shard_bits, threads, &t.fast, &t.reference, oracle)
            .unwrap_or_else(|e| panic!("{e}"));
        if v.mismatches > 0 || v.oracle_mismatches > 0 {
            println!(
                "{:>8} {:<6} | shard {shard:#x}: {} fast-vs-dd mismatches (first {:#010x?}), \
                 {} dd-vs-oracle mismatches (first {:#010x?})",
                t.kind.name(),
                t.func.name(),
                v.mismatches,
                v.first_mismatch,
                v.oracle_mismatches,
                v.first_oracle_mismatch,
            );
        }
        state.record(v).unwrap_or_else(|e| panic!("{e}"));
        state.save(&cli.state_dir).unwrap_or_else(|e| panic!("{e}"));
        swept += 1;
    }
    let s = state.summary();
    let elapsed = start.elapsed().as_secs_f64();
    let inputs = swept << cli.shard_bits;
    println!(
        "{:>8} {:<6} | {swept} shards ({inputs} inputs) in {elapsed:.1}s \
         ({:.1} Minput/s) | total {}/{} shards, {} mismatches, status {}",
        t.kind.name(),
        t.func.name(),
        inputs as f64 / elapsed / 1e6,
        s.shards_done,
        s.shards_total,
        s.mismatches,
        s.status(),
    );
    state
}

fn opt_bits_json(bits: Option<u32>) -> f64 {
    bits.map_or(-1.0, f64::from)
}

fn manifest(states: &[CertState]) -> Json {
    let mut funcs = Vec::new();
    for st in states {
        let s = st.summary();
        funcs.push(
            Json::obj()
                .set("name", format!("{}/{}", st.kind(), st.func()).as_str())
                .set("kind", st.kind())
                .set("func", st.func())
                .set("status", s.status())
                .set("done_ranges", st.done_ranges().as_str())
                .set("shard_bits", f64::from(st.shard_bits()))
                .set("shards_total", s.shards_total as f64)
                .set("shards_done", s.shards_done as f64)
                .set("inputs_checked", s.inputs_checked as f64)
                .set("mismatches", s.mismatches as f64)
                .set("first_mismatch", opt_bits_json(s.first_mismatch))
                .set("oracle_checked", s.oracle_checked as f64)
                .set("oracle_mismatches", s.oracle_mismatches as f64)
                .set("first_oracle_mismatch", opt_bits_json(s.first_oracle_mismatch)),
        );
    }
    Json::obj()
        .set("schema", SCHEMA)
        .set("n_inputs", (1u64 << 32) as f64)
        .set("functions", funcs)
}

/// `--check`: validates a committed manifest without sweeping — schema,
/// registry agreement (the function set must match the live dispatch
/// tables), internal consistency, zero mismatches, and canonical
/// formatting (the file must byte-match its own re-emission, so
/// hand-edits that still parse are caught).
fn check_manifest(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    check_bench_schema(&doc, SCHEMA, PER_FN_FIELDS).map_err(|e| format!("{path}: {e}"))?;
    if doc.to_pretty() != text {
        return Err(format!("{path}: not in canonical form (regenerate with the certify bin)"));
    }
    let funcs = doc.get("functions").and_then(Json::as_arr).unwrap_or(&[]);
    let mut expected: Vec<String> = Vec::new();
    for kind in [Kind::Float32, Kind::Posit32] {
        for f in kind.funcs() {
            expected.push(format!("{}/{}", kind.name(), f.name()));
        }
    }
    let got: Vec<String> = funcs
        .iter()
        .map(|f| f.get("name").and_then(Json::as_str).unwrap_or("?").to_string())
        .collect();
    if got != expected {
        return Err(format!(
            "{path}: function set {got:?} does not match the live registry {expected:?}"
        ));
    }
    for f in funcs {
        let name = f.get("name").and_then(Json::as_str).unwrap_or("?");
        let num = |k: &str| f.get(k).and_then(Json::as_num).unwrap_or(f64::NAN);
        if num("mismatches") != 0.0 {
            return Err(format!("{path}: {name} records {} mismatches", num("mismatches")));
        }
        if num("oracle_mismatches") != 0.0 {
            return Err(format!(
                "{path}: {name} records {} oracle mismatches",
                num("oracle_mismatches")
            ));
        }
        if num("shards_done") > num("shards_total") {
            return Err(format!("{path}: {name} has shards_done > shards_total"));
        }
        let bits = num("shard_bits");
        if num("inputs_checked") != num("shards_done") * (bits.exp2()) {
            return Err(format!("{path}: {name} inputs_checked inconsistent with shards_done"));
        }
        let status = f.get("status").and_then(Json::as_str).unwrap_or("?");
        let want = if num("shards_done") == num("shards_total") {
            "complete"
        } else if num("shards_done") > 0.0 {
            "partial"
        } else {
            "pending"
        };
        if status != want {
            return Err(format!("{path}: {name} status '{status}', expected '{want}'"));
        }
    }
    Ok(())
}

fn main() {
    let cli = parse_cli();
    if let Some(path) = &cli.check {
        match check_manifest(path) {
            Ok(()) => {
                println!("{path}: certification manifest OK");
                return;
            }
            Err(e) => {
                eprintln!("certify --check failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if cli.quick {
        // The smoke re-certifies its shard set from scratch every run:
        // stale state would turn the check into a no-op.
        let _ = std::fs::remove_dir_all(&cli.state_dir);
    }
    println!(
        "Certification sweep: shard_bits={} ({} inputs/shard), oracle stride {} x {} samples, \
         state {}{}\n",
        cli.shard_bits,
        1u64 << cli.shard_bits,
        cli.oracle_stride,
        cli.oracle_samples,
        cli.state_dir.display(),
        if cli.quick { ", quick mode" } else { "" },
    );

    let ts = targets(&cli.kinds, &cli.funcs);
    assert!(!ts.is_empty(), "no functions selected");
    let states: Vec<CertState> = ts.iter().map(|t| run_target(t, &cli)).collect();

    // The manifest always covers the full registry (pending entries for
    // functions outside this invocation's selection), so the committed
    // file's function set is stable across partial runs.
    let all = targets(&[Kind::Float32, Kind::Posit32], &None);
    let full_states: Vec<CertState> = all
        .iter()
        .map(|t| {
            states
                .iter()
                .find(|s| s.kind() == t.kind.name() && s.func() == t.func.name())
                .cloned()
                .unwrap_or_else(|| {
                    CertState::load_or_new(
                        &cli.state_dir,
                        t.func.name(),
                        t.kind.name(),
                        cli.shard_bits,
                    )
                    .unwrap_or_else(|e| panic!("{e}"))
                })
        })
        .collect();

    let doc = manifest(&full_states);
    if let Some(parent) = Path::new(&cli.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    write_validated(&cli.out, &doc, SCHEMA, PER_FN_FIELDS).expect("write manifest");
    println!("\nwrote {}", cli.out);

    let total_mismatches: u64 =
        full_states.iter().map(|s| s.summary().mismatches + s.summary().oracle_mismatches).sum();
    let done: u64 = full_states.iter().map(|s| s.summary().shards_done).sum();
    let total: u64 = full_states.iter().map(|s| s.summary().shards_total).sum();
    println!(
        "coverage: {done}/{total} shards across {} functions; {total_mismatches} mismatches",
        full_states.len(),
    );
    if total_mismatches > 0 {
        eprintln!("certification FAILED: mismatches recorded (see manifest)");
        std::process::exit(1);
    }
}
