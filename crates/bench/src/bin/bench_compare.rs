//! Diffs two `BENCH_*.json` documents from the same harness and fails
//! on timing regressions — the guard that keeps the committed full-run
//! BENCH files honest as the kernels evolve.
//!
//! Both documents must carry the same `schema` tag (comparing a fig3
//! run against a fig4 run is a usage error, exit 2). Every `ns_*`
//! field present in both files is compared per function as the ratio
//! `new / old`; a ratio above `1 + threshold` on any field is a
//! regression (exit 1). The summary prints the geometric-mean ratio
//! per field across functions, so broad drift shows up even when no
//! single function trips the threshold. Timing noise is real: the
//! default threshold is 25%, generous enough for run-to-run jitter on
//! a shared machine, tight enough to catch an accidental fast-path
//! pessimisation (the two-tier split is worth ~2x).
//!
//! Diffing a file against itself always passes with all-1.0 ratios —
//! ci.sh uses that as a smoke test of the comparator itself.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin bench_compare -- \
//!             OLD.json NEW.json [--threshold PCT]`

use rlibm_bench::json::{parse, Json};
use rlibm_bench::timing::geomean;

/// BENCH document schemas this comparator understands. A tag outside
/// this list is a usage error (exit 2): it would mean diffing documents
/// no harness in this workspace emits, so the "same schema" check can't
/// vouch that the ns_* fields mean the same thing in both files.
const KNOWN_SCHEMAS: &[&str] = &[
    "rlibm-bench/fig3/v1",
    // v2 adds a top-level "tables" size section (progressive tiers +
    // bit-packed tables); the per-function ns_* fields are unchanged,
    // so v1 and v2 documents diff cleanly against each other.
    "rlibm-bench/fig3/v2",
    "rlibm-bench/fig4/v1",
    "rlibm-bench/vector/v1",
    "rlibm-bench/vector/v2",
    "rlibm-bench/gen/v1",
    "rlibm-bench/serve/v1",
    // chaos_bench rows are scenarios, not functions, but carry ns_p50 /
    // ns_p99 per scenario — comparable between runs of the same harness.
    "rlibm-chaos/v1",
    // trace_report rows carry ns_* stage-attribution means per workload.
    "rlibm-trace/v1",
];

struct Cli {
    old: String,
    new: String,
    /// Regression threshold as a fraction (0.25 = +25%).
    threshold: f64,
}

fn parse_cli() -> Cli {
    let mut paths = Vec::new();
    let mut threshold = 0.25;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                let pct: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--threshold requires a percentage"));
                threshold = pct / 100.0;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two BENCH json paths");
    }
    let new = paths.pop().expect("len checked");
    let old = paths.pop().expect("len checked");
    Cli { old, new, threshold }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_compare OLD.json NEW.json [--threshold PCT]");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    parse(&text).unwrap_or_else(|e| usage(&format!("{path}: invalid JSON: {e}")))
}

/// The per-function entries as (name, object) pairs, insertion order.
fn functions(doc: &Json, path: &str) -> Vec<(String, Json)> {
    let funcs = doc
        .get("functions")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| usage(&format!("{path}: missing 'functions' array")));
    funcs
        .iter()
        .map(|f| {
            let name = f
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_else(|| usage(&format!("{path}: function entry missing 'name'")));
            (name.to_string(), f.clone())
        })
        .collect()
}

/// A schema tag without its trailing `/vN` revision: documents of the
/// same family measure the same thing, so a v1 baseline stays diffable
/// after a harness bumps its revision for an additive section.
fn schema_family(tag: &str) -> &str {
    match tag.rfind('/') {
        Some(i) if tag[i + 1..].starts_with('v') => &tag[..i],
        _ => tag,
    }
}

/// The `ns_*` fields of a function entry, insertion order.
fn ns_fields(entry: &Json) -> Vec<String> {
    match entry {
        Json::Obj(fields) => fields
            .iter()
            .filter(|(k, v)| k.starts_with("ns_") && v.as_num().is_some())
            .map(|(k, _)| k.clone())
            .collect(),
        _ => Vec::new(),
    }
}

fn main() {
    let cli = parse_cli();
    let old_doc = load(&cli.old);
    let new_doc = load(&cli.new);

    let old_schema = old_doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or_else(|| usage(&format!("{}: missing 'schema' tag", cli.old)));
    let new_schema = new_doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or_else(|| usage(&format!("{}: missing 'schema' tag", cli.new)));
    if schema_family(old_schema) != schema_family(new_schema) {
        usage(&format!(
            "schema mismatch: {} is '{old_schema}', {} is '{new_schema}'",
            cli.old, cli.new
        ));
    }
    for (schema, path) in [(old_schema, &cli.old), (new_schema, &cli.new)] {
        if !KNOWN_SCHEMAS.contains(&schema) {
            usage(&format!(
                "{path}: unknown schema '{schema}' (known: {})",
                KNOWN_SCHEMAS.join(", ")
            ));
        }
    }

    let old_fns = functions(&old_doc, &cli.old);
    let new_fns = functions(&new_doc, &cli.new);
    // Fields shared by both files' first entries: a harness that grew a
    // new measurement still diffs cleanly against an older emission.
    let fields: Vec<String> = old_fns
        .first()
        .map(|(_, e)| ns_fields(e))
        .unwrap_or_default()
        .into_iter()
        .filter(|f| new_fns.first().is_some_and(|(_, e)| e.get(f).is_some()))
        .collect();
    if fields.is_empty() {
        usage("no shared ns_* fields to compare");
    }

    println!(
        "bench_compare: {} -> {} (schema {old_schema}, threshold +{:.0}%)\n",
        cli.old,
        cli.new,
        cli.threshold * 100.0
    );
    let mut regressions = Vec::new();
    let mut ratios_by_field: Vec<(String, Vec<f64>)> =
        fields.iter().map(|f| (f.clone(), Vec::new())).collect();
    for (name, old_entry) in &old_fns {
        let Some((_, new_entry)) = new_fns.iter().find(|(n, _)| n == name) else {
            println!("  {name}: only in {} — skipped", cli.old);
            continue;
        };
        for (field, ratios) in &mut ratios_by_field {
            let (Some(old_v), Some(new_v)) = (
                old_entry.get(field).and_then(Json::as_num),
                new_entry.get(field).and_then(Json::as_num),
            ) else {
                continue;
            };
            if old_v <= 0.0 {
                continue;
            }
            let ratio = new_v / old_v;
            ratios.push(ratio);
            if ratio > 1.0 + cli.threshold {
                regressions.push(format!(
                    "{name}.{field}: {old_v:.2} -> {new_v:.2} ns ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }
    for (name, _) in &new_fns {
        if !old_fns.iter().any(|(n, _)| n == name) {
            println!("  {name}: only in {} — skipped", cli.new);
        }
    }

    println!("{:>16} | {:>13} | {:>9}", "field", "geomean ratio", "delta");
    println!("{}", "-".repeat(44));
    for (field, ratios) in &ratios_by_field {
        if ratios.is_empty() {
            continue;
        }
        let g = geomean(ratios);
        println!("{:>16} | {:>13.4} | {:>+8.1}%", field, g, (g - 1.0) * 100.0);
    }

    // Table-footprint delta, printed whenever both documents carry the
    // v2 "tables" size section (informational: smaller is better, but a
    // growth here is a review prompt, not a regression exit).
    if let (Some(Json::Obj(old_t)), Some(Json::Obj(new_t))) =
        (old_doc.get("tables"), new_doc.get("tables"))
    {
        let mut printed_header = false;
        for (field, old_v) in old_t {
            let (Some(old_b), Some(new_b)) = (
                old_v.as_num(),
                new_t.iter().find(|(k, _)| k == field).and_then(|(_, v)| v.as_num()),
            ) else {
                continue;
            };
            if old_b <= 0.0 {
                continue;
            }
            if !printed_header {
                println!("\ntable bytes:");
                printed_header = true;
            }
            println!(
                "  {field}: {old_b:.0} -> {new_b:.0} ({:+.1}%)",
                (new_b / old_b - 1.0) * 100.0
            );
        }
    }

    if regressions.is_empty() {
        println!("\nOK: no per-function regression above +{:.0}%", cli.threshold * 100.0);
    } else {
        eprintln!("\nFAIL: {} regression(s) above +{:.0}%:", regressions.len(), cli.threshold * 100.0);
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
