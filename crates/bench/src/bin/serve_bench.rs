//! Load generator for the `rlibm-serve` layer: runs the closed-loop
//! sharded service (shards under their panic-isolating supervisors —
//! the committed numbers include the supervision overhead) against a
//! synthetic mixed f32/posit workload, verifies every served response
//! bit-identical to the scalar two-tier functions and the accounting
//! balanced with zero sheds, and emits throughput plus p50/p99/p999
//! per-request latency into a schema-checked `BENCH_serve.json`
//! (`rlibm-bench/serve/v1`, re-parsed and validated before exit).
//!
//! Latency fields are `ns_*` so `bench_compare` treats higher latency as
//! a regression, exactly like the timing harnesses.
//!
//! Usage: `cargo run -p rlibm-bench --release --bin serve_bench -- \
//!             [--quick] [--out PATH]`

use rlibm_bench::json::{write_validated, Json};
use rlibm_obs::quantile::percentile;
use rlibm_serve::{serve_closed_loop, workload, ServeConfig};

pub const SCHEMA: &str = "rlibm-bench/serve/v1";
pub const PER_FN_FIELDS: &[&str] = &["ns_p50", "ns_p99", "ns_p999"];

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => panic!("bad arg '{other}'"),
        }
    }

    rlibm_serve::register_metrics();
    let cfg = ServeConfig {
        requests: if quick { 60_000 } else { 2_000_000 },
        ..ServeConfig::default()
    };
    println!(
        "serve_bench: {} requests, {} shard(s), {} producer(s), ring {} deep{}\n",
        cfg.requests,
        cfg.shards.clamp(1, rlibm_serve::metrics::MAX_SHARDS),
        cfg.producers.max(1),
        cfg.queue_capacity,
        if quick { " (quick mode)" } else { "" }
    );

    // Supervision is always on now: each shard runs under its
    // panic-isolating supervisor even on this healthy path, so the
    // numbers below are the cost-inclusive ones.
    let report = serve_closed_loop(&cfg).expect("healthy serve run");
    assert!(report.balanced(), "completions + sheds must equal submitted");
    assert_eq!(
        report.completions.len() as u64,
        cfg.requests,
        "a healthy run (no deadlines, no chaos) completes every request"
    );
    assert!(report.sheds.is_empty(), "a healthy run sheds nothing");
    assert!(report.failed_shards.is_empty(), "no shard may exhaust its restart budget");

    // Verify: the service answers with the scalar functions' exact bits.
    let mismatches = workload::count_mismatches(&report.completions);
    assert_eq!(mismatches, 0, "served responses must be bit-identical to scalar");

    // Percentiles: overall and per function id.
    let mut by_func: Vec<Vec<u64>> = (0..workload::NUM_FUNCS).map(|_| Vec::new()).collect();
    let mut all: Vec<u64> = Vec::with_capacity(report.completions.len());
    for c in &report.completions {
        all.push(c.latency_ns);
        by_func[c.func as usize % workload::NUM_FUNCS].push(c.latency_ns);
    }
    all.sort_unstable();
    let elapsed_ms = report.elapsed_ns as f64 / 1e6;
    let rps = report.requests_per_sec();

    println!(
        "{:>16} | {:>9} | {:>10} | {:>10} | {:>10}",
        "function", "requests", "p50 (ns)", "p99 (ns)", "p999 (ns)"
    );
    println!("{}", "-".repeat(68));
    let mut rows = Vec::new();
    let mut row = |label: String, lat: &mut Vec<u64>| {
        lat.sort_unstable();
        let (p50, p99, p999) = (
            percentile(lat, 0.50),
            percentile(lat, 0.99),
            percentile(lat, 0.999),
        );
        println!(
            "{:>16} | {:>9} | {:>10} | {:>10} | {:>10}",
            label,
            lat.len(),
            p50,
            p99,
            p999
        );
        rows.push(
            Json::obj()
                .set("name", label.as_str())
                .set("requests", lat.len() as f64)
                .set("ns_p50", p50 as f64)
                .set("ns_p99", p99 as f64)
                .set("ns_p999", p999 as f64),
        );
    };
    row("all".to_string(), &mut all);
    for f in 0..workload::NUM_FUNCS as u8 {
        row(workload::func_label(f), &mut by_func[f as usize]);
    }
    println!("{}", "-".repeat(68));
    println!(
        "\nthroughput: {:.0} requests/s over {:.1} ms ({} shard(s), {} producer(s)); \
         all {} responses bit-identical to scalar",
        rps,
        elapsed_ms,
        report.shards,
        report.producers,
        report.completions.len()
    );
    if rlibm_obs::enabled() {
        println!(
            "telemetry: serve.shard*.requests total = {}",
            rlibm_serve::metrics::total_requests()
        );
    }

    let doc = Json::obj()
        .set("schema", SCHEMA)
        .set("quick", quick)
        .set("n_inputs", cfg.requests as f64)
        .set("shards", report.shards as f64)
        .set("producers", report.producers as f64)
        .set("elapsed_ms", elapsed_ms)
        .set("requests_per_sec", rps)
        // Supervision accounting: all zero on a healthy run, but the
        // fields are committed so a regression that starts panicking or
        // shedding shows up in the artifact diff, not just in timing.
        .set("panics", report.panics as f64)
        .set("restarts", report.restarts as f64)
        .set("sheds", report.sheds.len() as f64)
        .set("drain_ns", report.drain_ns as f64)
        .set("functions", rows);
    write_validated(&out_path, &doc, SCHEMA, PER_FN_FIELDS).expect("write BENCH json");
    println!("\nwrote {out_path} (schema {SCHEMA}, parsed + validated)");
}
