//! Evaluation harnesses for the RLIBM-32 reproduction.
//!
//! Each table and figure of the paper's evaluation (Section 4) has a
//! regenerating binary in `src/bin/` and, for the timing figures, a
//! Criterion bench in `benches/`:
//!
//! | Paper artifact | Binary | Bench |
//! |---|---|---|
//! | Table 1 (float correctness)  | `table1` | — |
//! | Table 2 (posit32 correctness)| `table2` | — |
//! | Table 3 (generator stats)    | `table3` | — |
//! | Figure 3 (float speedups)    | `fig3`   | `fig3_float_speedup` |
//! | Figure 4 (posit32 speedups)  | `fig4`   | `fig4_posit_speedup` |
//! | Figure 5 (sub-domain sweep)  | `fig5`   | `fig5_subdomains` |
//! | §4.3 vectorization harness   | `vector_harness` | — |

pub mod sweep;
pub mod timing;
pub mod workloads;
