//! Evaluation harnesses for the RLIBM-32 reproduction.
//!
//! Each table and figure of the paper's evaluation (Section 4) has a
//! regenerating binary in `src/bin/`; the timing harnesses additionally
//! emit machine-readable JSON results:
//!
//! | Paper artifact | Binary | JSON emission |
//! |---|---|---|
//! | Table 1 (float correctness)  | `table1` | — |
//! | Table 2 (posit32 correctness)| `table2` | — |
//! | Table 3 (generator stats)    | `table3` | — |
//! | Figure 3 (float speedups)    | `fig3`   | `BENCH_fig3.json` |
//! | Figure 4 (posit32 speedups)  | `fig4`   | `BENCH_fig4.json` |
//! | Figure 5 (sub-domain sweep)  | `fig5`   | — |
//! | §4.3 vectorization harness   | `vector_harness` | `BENCH_vector.json` |
//! | Telemetry snapshot           | `telemetry_report` | `TELEM_report.json` |
//! | Trace latency attribution    | `trace_report` | `TRACE_report.json` |
//! | Bench regression diff        | `bench_compare` | — (reads two BENCH files) |
//!
//! The timing harnesses (`fig3`, `fig4`, `vector_harness`) measure the
//! two-tier runtime three ways per function — the plain-double fast
//! path, the pure double-double kernel, and the batched
//! `eval_slice_*` path — alongside the baselines, and report observed
//! dd-fallback rates (this crate builds `rlibm-math` with the
//! `fallback-counters` feature). Each accepts `--quick` (small
//! CI-smoke workload, used by `ci.sh`) and `--out PATH`. Emitted
//! documents use the hand-rolled [`json`] module (the workspace has no
//! registry dependencies): schema-tagged (`rlibm-bench/fig3/v1`, ...),
//! re-parsed and schema-checked by the harness itself before exit.

pub mod json;
pub mod sweep;
pub mod telem;
pub mod timing;
pub mod trace;
pub mod workloads;
