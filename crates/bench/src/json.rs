//! Minimal JSON emitter + parser for the machine-readable bench results
//! (`BENCH_fig3.json` etc.).
//!
//! The workspace has a zero-registry-dependency policy, so this is a
//! hand-rolled subset of JSON sufficient for flat result documents:
//! objects, arrays, strings (with `\"`/`\\`/`\n`-class escapes), finite
//! numbers, booleans and null. The parser exists so harnesses (and the
//! CI smoke test) can re-read what they wrote and validate it against
//! the expected schema — a round-trip check, not a general-purpose
//! JSON library.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted documents
/// are deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects: builder misuse).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON numbers must be finite, got {x}");
                // Shortest representation that round-trips through f64.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(xs) => {
                if xs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    x.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}]", "  ".repeat(depth));
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                let _ = write!(out, "\n{}}}", "  ".repeat(depth));
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<Vec<Json>> for Json {
    fn from(xs: Vec<Json>) -> Json {
        Json::Arr(xs)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset this module emits, plus standard
/// whitespace and `\uXXXX` escapes). Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut xs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(xs));
            }
            loop {
                xs.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(xs));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&bytes[start..*pos]).unwrap();
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => out.push(parse_unicode_escape(bytes, pos)?),
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).unwrap();
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Four hex digits of a `\uXXXX` escape, with `*pos` on the `u`; leaves
/// `*pos` on the last digit. `esc_at` is the byte offset of the escape's
/// backslash, carried into every error.
fn parse_hex4(bytes: &[u8], pos: &mut usize, esc_at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(*pos + 1..*pos + 5)
        .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| format!("bad \\u escape at byte {esc_at}"))?;
    let code =
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at byte {esc_at}"))?;
    *pos += 4;
    Ok(code)
}

/// Decodes one `\uXXXX` escape (with `*pos` on the `u`), including UTF-16
/// surrogate pairs spelled as two consecutive escapes (the only way JSON
/// can express code points above U+FFFF). Unpaired surrogates denote no
/// scalar value and are rejected with the escape's byte offset. Leaves
/// `*pos` on the last consumed byte.
fn parse_unicode_escape(bytes: &[u8], pos: &mut usize) -> Result<char, String> {
    let esc_at = *pos - 1; // the backslash
    let hi = parse_hex4(bytes, pos, esc_at)?;
    match hi {
        0xD800..=0xDBFF => {
            if bytes.get(*pos + 1) != Some(&b'\\') || bytes.get(*pos + 2) != Some(&b'u') {
                return Err(format!("unpaired high surrogate \\u{hi:04x} at byte {esc_at}"));
            }
            let lo_esc_at = *pos + 1;
            *pos += 2; // onto the second escape's 'u'
            let lo = parse_hex4(bytes, pos, lo_esc_at)?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(format!(
                    "high surrogate \\u{hi:04x} at byte {esc_at} followed by \
                     non-low-surrogate \\u{lo:04x}"
                ));
            }
            let code = 0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            // Always a valid scalar: supplementary-plane range by construction.
            char::from_u32(code).ok_or_else(|| format!("bad \\u pair at byte {esc_at}"))
        }
        0xDC00..=0xDFFF => {
            Err(format!("unpaired low surrogate \\u{hi:04x} at byte {esc_at}"))
        }
        _ => char::from_u32(hi).ok_or_else(|| format!("bad \\u codepoint at byte {esc_at}")),
    }
}

/// Validates a bench-result document against the shared schema: a
/// `schema` tag matching `expected_schema`, an `n_inputs` count, and a
/// non-empty `functions` array whose entries carry a `name` plus every
/// field in `per_fn_fields` as a finite number. Returns a description
/// of the first violation.
pub fn check_bench_schema(
    doc: &Json,
    expected_schema: &str,
    per_fn_fields: &[&str],
) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema' tag")?;
    if schema != expected_schema {
        return Err(format!("schema '{schema}', expected '{expected_schema}'"));
    }
    doc.get("n_inputs")
        .and_then(Json::as_num)
        .filter(|&n| n >= 1.0)
        .ok_or("missing or non-positive 'n_inputs'")?;
    let funcs = doc
        .get("functions")
        .and_then(Json::as_arr)
        .ok_or("missing 'functions' array")?;
    if funcs.is_empty() {
        return Err("'functions' is empty".to_string());
    }
    for f in funcs {
        let name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or("function entry missing 'name'")?;
        for field in per_fn_fields {
            f.get(field)
                .and_then(Json::as_num)
                .filter(|x| x.is_finite())
                .ok_or(format!("function '{name}' missing numeric '{field}'"))?;
        }
    }
    Ok(())
}

/// Writes `doc` to `path`, then re-reads and re-validates it — harnesses
/// call this so a malformed emission fails loudly at generation time.
pub fn write_validated(
    path: &str,
    doc: &Json,
    expected_schema: &str,
    per_fn_fields: &[&str],
) -> std::io::Result<()> {
    std::fs::write(path, doc.to_pretty())?;
    let text = std::fs::read_to_string(path)?;
    let parsed = parse(&text).unwrap_or_else(|e| panic!("{path}: emitted invalid JSON: {e}"));
    assert_eq!(&parsed, doc, "{path}: JSON did not round-trip");
    check_bench_schema(&parsed, expected_schema, per_fn_fields)
        .unwrap_or_else(|e| panic!("{path}: schema violation: {e}"));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_like_document() {
        let doc = Json::obj()
            .set("schema", "rlibm-bench/fig3/v1")
            .set("quick", true)
            .set("n_inputs", 256.0)
            .set(
                "functions",
                vec![Json::obj()
                    .set("name", "ln")
                    .set("ns_fast", 12.25)
                    .set("fallback_rate", 1e-4)],
            )
            .set("note", "line1\nline2 \"quoted\"");
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn parses_standard_json_forms() {
        let j = parse(" { \"a\" : [ 1 , -2.5e3 , null , true ] , \"b\" : {} } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(-2500.0));
        assert_eq!(parse("\"\\u0041\\n\"").unwrap(), Json::Str("A\n".into()));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1D11E (musical G clef) as its UTF-16 pair.
        assert_eq!(parse("\"\\uD834\\uDD1E\"").unwrap(), Json::Str("\u{1D11E}".into()));
        // Lowercase hex, embedded in surrounding text.
        assert_eq!(parse("\"a\\ud83d\\ude00b\"").unwrap(), Json::Str("a\u{1F600}b".into()));
        // An astral char written literally round-trips through the emitter.
        let doc = Json::Str("clef \u{1D11E}".into());
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_unpaired_surrogates_with_offsets() {
        let err = parse("\"\\uD834\"").unwrap_err();
        assert!(err.contains("unpaired high surrogate") && err.contains("byte 1"), "{err}");
        let err = parse("\"\\uDC00x\"").unwrap_err();
        assert!(err.contains("unpaired low surrogate") && err.contains("byte 1"), "{err}");
        // High surrogate followed by a non-surrogate escape.
        let err = parse("\"\\uD834\\u0041\"").unwrap_err();
        assert!(err.contains("non-low-surrogate"), "{err}");
        // High surrogate followed by a literal char, not an escape.
        let err = parse("\"\\uD834A\"").unwrap_err();
        assert!(err.contains("unpaired high surrogate"), "{err}");
        // Offsets point at the failing escape, not the string start.
        let err = parse("\"ab\\uDC00\"").unwrap_err();
        assert!(err.contains("byte 3"), "{err}");
    }

    #[test]
    fn rejects_malformed_unicode_escapes_with_offsets() {
        let err = parse("\"\\u12\"").unwrap_err();
        assert!(err.contains("bad \\u escape") && err.contains("byte 1"), "{err}");
        let err = parse("\"\\u12g4\"").unwrap_err();
        assert!(err.contains("bad \\u escape"), "{err}");
        // `from_str_radix` would accept a leading '+'; the digit filter
        // must not.
        let err = parse("\"\\u+123\"").unwrap_err();
        assert!(err.contains("bad \\u escape"), "{err}");
        // Truncated pair: high surrogate then EOF inside the low escape.
        let err = parse("\"\\uD834\\uDD\"").unwrap_err();
        assert!(err.contains("bad \\u escape") && err.contains("byte 7"), "{err}");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn schema_check_catches_missing_fields() {
        let good = Json::obj()
            .set("schema", "rlibm-bench/fig3/v1")
            .set("n_inputs", 64.0)
            .set(
                "functions",
                vec![Json::obj().set("name", "exp").set("ns_fast", 3.0)],
            );
        assert!(check_bench_schema(&good, "rlibm-bench/fig3/v1", &["ns_fast"]).is_ok());
        assert!(check_bench_schema(&good, "rlibm-bench/fig4/v1", &["ns_fast"]).is_err());
        assert!(check_bench_schema(&good, "rlibm-bench/fig3/v1", &["ns_dd"]).is_err());
        let empty = Json::obj()
            .set("schema", "rlibm-bench/fig3/v1")
            .set("n_inputs", 64.0)
            .set("functions", Vec::new());
        assert!(check_bench_schema(&empty, "rlibm-bench/fig3/v1", &[]).is_err());
    }
}
