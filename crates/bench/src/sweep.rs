//! Figure 5: performance of `log2`/`log10` as a function of the number of
//! piecewise sub-domains (2^0 .. 2^12).
//!
//! The paper varies the size of the piecewise-polynomial table and
//! measures throughput; circles mark split counts where the polynomial
//! degree drops. This module builds the same family: a `log2`/`log10`
//! implementation parameterized by `n` index bits, with an
//! `atanh`-series polynomial whose term count shrinks as the table grows
//! (the exact trade the generator's `SplitDomain` exploits). Tables are
//! populated from the multi-precision oracle at startup.

use rlibm_mp::elem;

/// A `log2` or `log10` implementation with `2^n` table entries.
pub struct SweepLog {
    /// Index bits (0 = single polynomial).
    n_bits: u32,
    /// Table of `(log(F) hi, log(F) lo)` at `F = 1 + j/2^n`.
    table: Vec<(f64, f64)>,
    /// Number of odd `atanh` terms in the polynomial.
    terms: usize,
    /// Conversion factor from natural log (dd).
    factor: (f64, f64),
    /// log(2) in the target base (dd), multiplied by the exponent.
    log_2: (f64, f64),
}

/// Which logarithm the sweep instance computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// Base 2.
    Two,
    /// Base 10.
    Ten,
}

impl SweepLog {
    /// Builds the table with the multi-precision oracle (prec 140).
    pub fn new(base: Base, n_bits: u32) -> SweepLog {
        assert!(n_bits <= 14, "table would not be realistic");
        const P: u32 = 140;
        let dd = |v: &rlibm_mp::MpFloat| -> (f64, f64) {
            let hi = v.to_f64();
            let lo = v.sub(&rlibm_mp::MpFloat::from_f64(hi, P), P).to_f64();
            (hi, lo)
        };
        let n = 1usize << n_bits;
        // 2^n prec-140 oracle evaluations, one per table slot — by far the
        // dominant construction cost at large n, and every slot is
        // independent, so populate on all cores. `par_map_range` preserves
        // slot order, so the table is identical for any thread count.
        let table: Vec<(f64, f64)> =
            rlibm_core::par::par_map_range(n, rlibm_core::par::num_threads(), |j| {
                if j == 0 {
                    (0.0, 0.0)
                } else {
                    let f = 1.0 + j as f64 / n as f64;
                    match base {
                        Base::Two => dd(&elem::log2(f, P)),
                        Base::Ten => dd(&elem::log10(f, P)),
                    }
                }
            });
        // s = (z-F)/(z+F) <= 2^-(n_bits+1.58); term count for ~2^-41
        // relative truncation (far below the f32 rounding-interval slack):
        // (n_bits + 1.58) * (2T+1) >= 41. At 2^8 sub-domains this yields
        // degree 3, matching the paper's Table 3 row for log2.
        let denom = n_bits as f64 + 1.58;
        let needed = (41.0 / denom).ceil() as usize;
        let terms = needed.saturating_sub(1).div_ceil(2).max(1);
        let one = rlibm_mp::MpFloat::from_u64(1, P);
        let ln2 = rlibm_mp::consts::ln2(P);
        let ln10 = rlibm_mp::consts::ln10(P);
        let (factor, log_2) = match base {
            Base::Two => (dd(&one.div(&ln2, P)), (1.0, 0.0)),
            Base::Ten => (dd(&one.div(&ln10, P)), dd(&ln2.div(&ln10, P))),
        };
        SweepLog { n_bits, table, terms, factor, log_2 }
    }

    /// Number of sub-domains.
    pub fn domains(&self) -> usize {
        self.table.len()
    }

    /// Degree of the polynomial (odd series: `2*terms - 1`).
    pub fn degree(&self) -> u32 {
        (2 * self.terms - 1) as u32
    }

    /// Approximate table bytes (the paper reports 6 KB at 2^8).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * 16
    }

    /// Evaluates the parameterized log (single rounding into f32).
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        if x.is_nan() || x < 0.0 {
            return f32::NAN;
        }
        if x == 0.0 {
            return f32::NEG_INFINITY;
        }
        if x == f32::INFINITY {
            return f32::INFINITY;
        }
        let xd = x as f64;
        let bits = xd.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let z = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        // Sub-domain by bit pattern: the top n mantissa bits (exactly the
        // SplitDomain dispatch).
        let j = if self.n_bits == 0 {
            0
        } else {
            ((bits >> (52 - self.n_bits)) & ((1u64 << self.n_bits) - 1)) as usize
        };
        let f = 1.0 + j as f64 / self.table.len() as f64;
        // s = (z - f) / (z + f); log(z/f) = 2 atanh(s) / ln(base).
        let num = z - f;
        let den = z + f;
        let s_hi = num / den;
        let res = (-s_hi).mul_add(den, num) / den;
        let s = rlibm_math::dd::Dd::new(s_hi, res);
        // Odd series: 2s * (1 + s^2/3 + s^4/5 + ...).
        let s2 = s_hi * s_hi;
        let mut tail = 0.0f64;
        for k in (1..self.terms).rev() {
            tail = s2 * (1.0 / (2 * k + 1) as f64 + tail);
        }
        let atanh2 = s.scale(2.0).add(s.scale(2.0).mul_f64(tail));
        let scaled = atanh2.mul(rlibm_math::dd::Dd { hi: self.factor.0, lo: self.factor.1 });
        let (th, tl) = self.table[j];
        let e_term = rlibm_math::dd::Dd { hi: self.log_2.0, lo: self.log_2.1 }.mul_f64(e as f64);
        let total = e_term
            .add(rlibm_math::dd::Dd { hi: th, lo: tl })
            .add(scaled);
        rlibm_math::round::round_dd_f32(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_log2_at_several_split_counts() {
        for n in [0, 2, 6, 10] {
            let sw = SweepLog::new(Base::Two, n);
            let mut x = 0.001f32;
            while x < 1000.0 {
                let want = rlibm_math::log2(x);
                let got = sw.eval(x);
                assert_eq!(got, want, "n={n}, x={x}");
                x *= 1.618;
            }
        }
    }

    #[test]
    fn degree_decreases_with_splits() {
        let degrees: Vec<u32> = (0..=12).map(|n| SweepLog::new(Base::Two, n).degree()).collect();
        assert!(degrees.windows(2).all(|w| w[1] <= w[0]), "{degrees:?}");
        assert!(degrees[0] > degrees[12]);
    }

    #[test]
    fn log10_variant_works() {
        let sw = SweepLog::new(Base::Ten, 8);
        assert_eq!(sw.eval(1000.0), 3.0);
        assert_eq!(sw.eval(1e10), 10.0);
        assert_eq!(sw.domains(), 256);
    }
}
