//! Serialization of [`rlibm_obs::TelemetrySnapshot`] to the
//! machine-readable `TELEM_*.json` document (schema `rlibm-telem/v1`).
//!
//! The document has three sections mirroring the snapshot: a flat
//! `counters` object (name → value, name-sorted and diff-friendly), and
//! `histograms` / `spans` arrays whose entries carry `name`, `count`,
//! `sum` and the nonzero log2 `buckets` as `[bucket, count]` pairs.
//! Span entries are histograms of elapsed nanoseconds, so their `sum`
//! is total time spent inside the span.
//!
//! Like the `BENCH_*.json` emitters, the writer re-parses and
//! schema-checks its own output before returning so a malformed
//! emission fails at generation time, not at first consumption.

use crate::json::{parse, Json};
use rlibm_obs::{HistogramSnapshot, TelemetrySnapshot};

/// Schema tag carried by every telemetry document.
pub const TELEM_SCHEMA: &str = "rlibm-telem/v1";

fn histograms_to_json(hs: &[HistogramSnapshot]) -> Json {
    Json::Arr(
        hs.iter()
            .map(|h| {
                let buckets: Vec<Json> = h
                    .buckets
                    .iter()
                    .map(|&(b, n)| {
                        Json::Arr(vec![Json::Num(f64::from(b)), Json::Num(n as f64)])
                    })
                    .collect();
                Json::obj()
                    .set("name", h.name)
                    .set("count", h.count as f64)
                    .set("sum", h.sum as f64)
                    .set("buckets", buckets)
            })
            .collect(),
    )
}

/// Serializes a snapshot (plus run metadata) to a telemetry document.
pub fn telem_to_json(snap: &TelemetrySnapshot, quick: bool, seed: u64) -> Json {
    let counters = snap
        .counters
        .iter()
        .fold(Json::obj(), |o, c| o.set(c.name, c.value as f64));
    Json::obj()
        .set("schema", TELEM_SCHEMA)
        .set("quick", quick)
        .set("seed", seed as f64)
        .set("counters", counters)
        .set("histograms", histograms_to_json(&snap.histograms))
        .set("spans", histograms_to_json(&snap.spans))
}

fn check_histogram_section(doc: &Json, section: &str) -> Result<(), String> {
    let entries = doc
        .get(section)
        .and_then(Json::as_arr)
        .ok_or(format!("missing '{section}' array"))?;
    for h in entries {
        let name = h
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("{section} entry missing 'name'"))?;
        let count = h
            .get("count")
            .and_then(Json::as_num)
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or(format!("{section} '{name}' missing numeric 'count'"))?;
        h.get("sum")
            .and_then(Json::as_num)
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or(format!("{section} '{name}' missing numeric 'sum'"))?;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or(format!("{section} '{name}' missing 'buckets'"))?;
        let mut bucket_total = 0.0;
        for b in buckets {
            let pair = b
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or(format!("{section} '{name}': bucket is not a [bucket, count] pair"))?;
            bucket_total += pair[1]
                .as_num()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or(format!("{section} '{name}': non-numeric bucket count"))?;
        }
        if bucket_total != count {
            return Err(format!(
                "{section} '{name}': bucket counts sum to {bucket_total}, 'count' says {count}"
            ));
        }
    }
    Ok(())
}

/// Validates a telemetry document: the schema tag, a `counters` object
/// of finite non-negative numbers, and internally consistent
/// `histograms` / `spans` sections. Returns the first violation.
pub fn check_telem_schema(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema' tag")?;
    if schema != TELEM_SCHEMA {
        return Err(format!("schema '{schema}', expected '{TELEM_SCHEMA}'"));
    }
    match doc.get("counters") {
        Some(Json::Obj(fields)) => {
            for (name, v) in fields {
                v.as_num()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or(format!("counter '{name}' is not a finite non-negative number"))?;
            }
        }
        _ => return Err("missing 'counters' object".to_string()),
    }
    check_histogram_section(doc, "histograms")?;
    check_histogram_section(doc, "spans")
}

/// Writes a telemetry document to `path`, then re-reads, re-parses and
/// re-validates it — mirrors [`crate::json::write_validated`] for the
/// telemetry schema.
pub fn write_validated_telem(path: &str, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, doc.to_pretty())?;
    let text = std::fs::read_to_string(path)?;
    let parsed = parse(&text).unwrap_or_else(|e| panic!("{path}: emitted invalid JSON: {e}"));
    assert_eq!(&parsed, doc, "{path}: JSON did not round-trip");
    check_telem_schema(&parsed).unwrap_or_else(|e| panic!("{path}: schema violation: {e}"));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlibm_obs::{CounterSnapshot, HistogramSnapshot};

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: vec![
                CounterSnapshot { name: "lp.exact.solves", value: 7 },
                CounterSnapshot { name: "runtime.fallback.f32.exp", value: 0 },
            ],
            histograms: vec![HistogramSnapshot {
                name: "oracle.ziv.final_prec.ln",
                count: 3,
                sum: 384,
                buckets: vec![(8, 3)],
            }],
            spans: vec![HistogramSnapshot {
                name: "pipeline.generate",
                count: 1,
                sum: 1_500_000,
                buckets: vec![(21, 1)],
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let doc = telem_to_json(&sample_snapshot(), true, 42);
        let parsed = parse(&doc.to_pretty()).expect("valid JSON");
        assert_eq!(parsed, doc);
        assert!(check_telem_schema(&parsed).is_ok());
        let counters = parsed.get("counters").expect("counters");
        assert_eq!(counters.get("lp.exact.solves").and_then(Json::as_num), Some(7.0));
        // Zero-valued counters stay present: "observed zero" is data.
        assert_eq!(
            counters.get("runtime.fallback.f32.exp").and_then(Json::as_num),
            Some(0.0)
        );
    }

    #[test]
    fn schema_check_catches_violations() {
        let good = telem_to_json(&sample_snapshot(), false, 1);
        assert!(check_telem_schema(&good).is_ok());

        let wrong_tag = Json::obj().set("schema", "rlibm-bench/fig3/v1");
        assert!(check_telem_schema(&wrong_tag).is_err());

        let no_counters = Json::obj()
            .set("schema", TELEM_SCHEMA)
            .set("histograms", Vec::new())
            .set("spans", Vec::new());
        assert!(check_telem_schema(&no_counters).is_err());

        // Bucket counts must reconcile with the histogram's total count.
        let inconsistent = Json::obj()
            .set("schema", TELEM_SCHEMA)
            .set("counters", Json::obj())
            .set(
                "histograms",
                vec![Json::obj()
                    .set("name", "h")
                    .set("count", 5.0)
                    .set("sum", 10.0)
                    .set("buckets", vec![Json::Arr(vec![Json::Num(2.0), Json::Num(3.0)])])],
            )
            .set("spans", Vec::new());
        assert!(check_telem_schema(&inconsistent).is_err());
    }
}
