//! Asserts the tentpole performance claim's precondition: the plain-double
//! fast path must serve the overwhelming majority of inputs, with the
//! certified dd fallback firing only inside the narrow unsafe bands.
//!
//! Everything runs in ONE `#[test]` because the fallback counters are
//! process-global atomics; parallel test binaries would race the
//! reset/read windows.

use rlibm_core::validate::{stratified_f32, stratified_posit32};
use rlibm_math::stats;
use rlibm_mp::Func;

/// Release: 2 signs x 255 exponents x 1961 ~= 1.0M inputs per function,
/// matching the ISSUE's "stratified 1M-input sweep".
fn per_exponent() -> u32 {
    if cfg!(debug_assertions) {
        40
    } else {
        1961
    }
}

fn posit_count() -> u32 {
    if cfg!(debug_assertions) {
        20_000
    } else {
        1_000_000
    }
}

#[test]
fn fast_path_serves_at_least_99_percent() {
    assert!(
        stats::enabled(),
        "bench must be built with rlibm-math/fallback-counters"
    );

    for f in Func::ALL {
        let xs = stratified_f32(per_exponent(), 0xFA11 + f.name().len() as u64);
        let func = rlibm_math::f32_fn_by_name(f.name()).expect("known name");
        stats::reset();
        for &x in &xs {
            std::hint::black_box(func(x));
        }
        let fallbacks = stats::fallbacks_f32(f.name());
        let rate = fallbacks as f64 / xs.len() as f64;
        assert!(
            rate <= 0.01,
            "{}: dd fallback on {fallbacks} of {} f32 inputs ({:.3}%)",
            f.name(),
            xs.len(),
            rate * 100.0
        );
    }

    for f in Func::POSIT {
        let xs = stratified_posit32(posit_count(), 0xFA11 + f.name().len() as u64);
        let func = rlibm_math::posit32_fn_by_name(f.name()).expect("known name");
        stats::reset();
        for &x in &xs {
            std::hint::black_box(func(x));
        }
        let fallbacks = stats::fallbacks_posit32(f.name());
        let rate = fallbacks as f64 / xs.len() as f64;
        assert!(
            rate <= 0.01,
            "{}: dd fallback on {fallbacks} of {} posit32 inputs ({:.3}%)",
            f.name(),
            xs.len(),
            rate * 100.0
        );
    }
}
