//! End-to-end exercise of the certification driver against the real
//! library: sweeps special-value shards of `exp` (float32) and `ln`
//! (posit32), and pins the kill/resume contract — a reloaded state must
//! not rescan finished shards and must keep accumulating.

use std::path::PathBuf;

use rlibm_core::certify::{sweep_shard, CertState, OracleBudget};
use rlibm_mp::{correctly_rounded, Func};
use rlibm_posit::Posit32;

fn f32_bits(f: fn(f32) -> f32) -> impl Fn(u32) -> u32 + Sync {
    move |b| {
        let y = f(f32::from_bits(b));
        if y.is_nan() {
            0x7FC0_0000
        } else {
            y.to_bits()
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlibm-certify-driver-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn exp_special_shards_certify_clean_and_resume_skips_done_work() {
    let dir = tmpdir("exp");
    let fast = f32_bits(rlibm_math::exp);
    let dd = f32_bits(rlibm_math::f32_dd_fn_by_name("exp").expect("registry"));
    let oracle = |b: u32| {
        let y = correctly_rounded::<f32>(Func::Exp, f32::from_bits(b));
        if y.is_nan() {
            0x7FC0_0000
        } else {
            y.to_bits()
        }
    };
    let budget = OracleBudget { oracle: &oracle, samples: 8, seed: 1 };

    // Phase 1 ("the run that gets killed"): two shards, checkpointed.
    let mut st = CertState::load_or_new(&dir, "exp", "float32", 16).expect("fresh state");
    for shard in [0x0000u32, 0x3F80] {
        let v = sweep_shard(shard, 16, 2, &fast, &dd, Some(&budget)).expect("sweep");
        assert!(v.clean(), "exp shard {shard:#x} must certify clean: {v:?}");
        st.record(v).expect("record");
        st.save(&dir).expect("save");
    }

    // Phase 2 ("the resumed run"): the finished shards are not remaining.
    let mut resumed = CertState::load_or_new(&dir, "exp", "float32", 16).expect("resume");
    let remaining = resumed.remaining();
    assert!(!remaining.contains(&0x0000) && !remaining.contains(&0x3F80));
    assert_eq!(remaining.len(), 65536 - 2);
    assert_eq!(resumed.verdict(0x3F80).map(|v| v.oracle_checked), Some(8));

    // Accumulation: one more shard (the overflow/NaN boundary region).
    let v = sweep_shard(0x7F80, 16, 2, &fast, &dd, Some(&budget)).expect("sweep");
    assert!(v.clean(), "exp inf/NaN shard must certify clean: {v:?}");
    resumed.record(v).expect("record");
    resumed.save(&dir).expect("save");
    let s = CertState::load_or_new(&dir, "exp", "float32", 16).expect("reload").summary();
    assert_eq!(s.shards_done, 3);
    assert_eq!(s.inputs_checked, 3 * 65536);
    assert_eq!(s.mismatches, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn posit_ln_special_shards_certify_clean() {
    let fast = rlibm_math::posit32_fn_by_name("ln").expect("registry");
    let dd = rlibm_math::posit32_dd_fn_by_name("ln").expect("registry");
    let fast_bits = move |b: u32| fast(Posit32::from_bits(b)).to_bits();
    let dd_bits = move |b: u32| dd(Posit32::from_bits(b)).to_bits();
    let oracle =
        |b: u32| correctly_rounded::<Posit32>(Func::Ln, Posit32::from_bits(b)).to_bits();
    let budget = OracleBudget { oracle: &oracle, samples: 8, seed: 2 };
    // Zero/minpos region, the 1.0 neighborhood, NaR and the negative zone
    // (ln < 0 -> NaR), maxpos saturation.
    for shard in [0x0000u32, 0x4000, 0x7FFF, 0x8000, 0xC000] {
        let v = sweep_shard(shard, 16, 2, fast_bits, dd_bits, Some(&budget)).expect("sweep");
        assert!(v.clean(), "posit ln shard {shard:#x} must certify clean: {v:?}");
    }
}
