//! The workspace carries several hand-maintained per-function lists: the
//! name-dispatch tables in `rlibm_math`, the 18 fallback-counter slots in
//! `stats`, the fault-injection sites keyed to those slots, the bench
//! timing workloads, and the oracle's `Func` enum. They must all agree on
//! one function-name set — Table 1's ten float functions and Table 2's
//! eight posit functions — or a future registry change silently desyncs a
//! harness. This test pins the agreement so drift fails fast.

use rlibm_mp::Func;
use rlibm_posit::Posit32;

/// Names that must never resolve anywhere: close misses and the two
/// float-only functions on posit dispatchers.
const UNKNOWN: &[&str] = &["tan", "log", "exp3", "", "LN", "sinpi ", "ln\n"];

fn float_names() -> Vec<&'static str> {
    Func::ALL.iter().map(|f| f.name()).collect()
}

fn posit_names() -> Vec<&'static str> {
    Func::POSIT.iter().map(|f| f.name()).collect()
}

#[test]
fn table_sizes_agree() {
    assert_eq!(Func::ALL.len(), 10, "paper Table 1");
    assert_eq!(Func::POSIT.len(), 8, "paper Table 2");
    assert_eq!(
        rlibm_math::stats::slot::COUNT,
        Func::ALL.len() + Func::POSIT.len(),
        "one fallback-counter slot per (kind, function)"
    );
    assert_eq!(
        rlibm_math::fault::SITE_COUNT,
        rlibm_math::stats::slot::COUNT,
        "one fault-injection site per counter slot"
    );
    // Every posit function is also a float function (Table 2 is a prefix
    // of Table 1 in the paper's ordering).
    for name in posit_names() {
        assert!(float_names().contains(&name), "posit fn {name} missing from Table 1");
    }
}

#[test]
fn float32_dispatchers_cover_exactly_the_table() {
    for (i, name) in float_names().into_iter().enumerate() {
        assert!(rlibm_math::f32_fn_by_name(name).is_some(), "f32 dispatch missing {name}");
        assert!(rlibm_math::f32_dd_fn_by_name(name).is_some(), "dd dispatch missing {name}");
        assert!(
            rlibm_math::baseline_f32_fn_by_name(name).is_some(),
            "baseline dispatch missing {name}"
        );
        let slot = rlibm_math::stats::f32_slot_by_name(name);
        assert_eq!(slot, Some(i), "stats slot for {name} must follow Table 1 order");
        assert!(
            rlibm_math::eval_f32_by_name(name, 0.5).is_some(),
            "eval_f32_by_name missing {name}"
        );
        let xs = [0.25f32, 0.5, 1.5];
        let mut out = [0.0f32; 3];
        assert!(
            rlibm_math::eval_slice_f32(name, &xs, &mut out).is_ok(),
            "eval_slice_f32 missing {name}"
        );
    }
    for name in UNKNOWN {
        assert!(rlibm_math::f32_fn_by_name(name).is_none(), "f32 dispatch resolves '{name}'");
        assert!(rlibm_math::f32_dd_fn_by_name(name).is_none());
        assert!(rlibm_math::baseline_f32_fn_by_name(name).is_none());
        assert!(rlibm_math::stats::f32_slot_by_name(name).is_none());
    }
}

#[test]
fn posit32_dispatchers_cover_exactly_the_table() {
    let x = Posit32::from_f64(0.5);
    for (i, name) in posit_names().into_iter().enumerate() {
        assert!(rlibm_math::posit32_fn_by_name(name).is_some(), "posit dispatch missing {name}");
        assert!(
            rlibm_math::posit32_dd_fn_by_name(name).is_some(),
            "posit dd dispatch missing {name}"
        );
        let slot = rlibm_math::stats::posit32_slot_by_name(name);
        assert_eq!(
            slot,
            Some(Func::ALL.len() + i),
            "posit slot for {name} must follow the float block"
        );
        assert!(rlibm_math::eval_posit32_by_name(name, x).is_some());
    }
    // The two pi-trig functions are float-only (Table 2 has no sinpi/cospi).
    for name in ["sinpi", "cospi"] {
        assert!(
            rlibm_math::posit32_fn_by_name(name).is_none(),
            "posit dispatch must not resolve {name}"
        );
        assert!(rlibm_math::posit32_dd_fn_by_name(name).is_none());
        assert!(rlibm_math::stats::posit32_slot_by_name(name).is_none());
    }
    for name in UNKNOWN {
        assert!(rlibm_math::posit32_fn_by_name(name).is_none());
        assert!(rlibm_math::eval_posit32_by_name(name, x).is_none());
    }
}

#[test]
fn sixteen_bit_dispatchers_cover_the_posit_set() {
    // The 16-bit targets (posit16, binary16, bfloat16) share Table 2's
    // eight-function set.
    let p = rlibm_posit::Posit16::from_f64(0.5);
    let h = rlibm_fp::Half::from_f64(0.5);
    let b = rlibm_fp::BFloat16::from_f64(0.5);
    for name in posit_names() {
        assert!(rlibm_math::eval_posit16_by_name(name, p).is_some(), "posit16 missing {name}");
        assert!(rlibm_math::eval_half_by_name(name, h).is_some(), "half missing {name}");
        assert!(rlibm_math::eval_bf16_by_name(name, b).is_some(), "bf16 missing {name}");
    }
    for name in ["sinpi", "cospi"] {
        assert!(rlibm_math::eval_posit16_by_name(name, p).is_none());
        assert!(rlibm_math::eval_half_by_name(name, h).is_none());
        assert!(rlibm_math::eval_bf16_by_name(name, b).is_none());
    }
}

#[test]
fn bench_workloads_cover_both_tables() {
    for name in float_names() {
        let xs = rlibm_bench::workloads::timing_inputs_f32(name, 64, 7);
        assert_eq!(xs.len(), 64, "f32 workload for {name}");
        assert!(xs.iter().all(|x| x.is_finite()), "f32 workload for {name} must be finite");
    }
    for name in posit_names() {
        let xs = rlibm_bench::workloads::timing_inputs_posit32(name, 64, 7);
        assert_eq!(xs.len(), 64, "posit workload for {name}");
        assert!(!xs.iter().any(|x| x.is_nar()), "posit workload for {name} must avoid NaR");
    }
}

#[test]
fn tier_registry_covers_exactly_the_counter_slots() {
    use rlibm_math::tiers;

    // Ten f32 ladders in Table 1 order, eight posit ladders following
    // the float block — one TierSpec per stats slot, no gaps.
    assert_eq!(tiers::F32_TIERS.len(), Func::ALL.len());
    assert_eq!(tiers::POSIT32_TIERS.len(), Func::POSIT.len());
    for (i, name) in float_names().into_iter().enumerate() {
        let spec = &tiers::F32_TIERS[i];
        assert_eq!(spec.name, format!("f32.{name}"), "tier row {i} out of Table 1 order");
        assert_eq!(spec.slot, i, "tier slot for {name}");
        assert_eq!(tiers::by_name(&format!("f32.{name}")), Some(spec));
        assert_eq!(tiers::by_slot(i), Some(spec));
    }
    for (i, name) in posit_names().into_iter().enumerate() {
        let spec = &tiers::POSIT32_TIERS[i];
        assert_eq!(spec.name, format!("posit32.{name}"), "posit tier row {i} out of order");
        assert_eq!(spec.slot, Func::ALL.len() + i, "posit tier slot for {name}");
        assert_eq!(tiers::by_slot(Func::ALL.len() + i), Some(spec));
    }
    // Float-only and unknown names must not resolve.
    for name in ["f32.tan", "posit32.sinpi", "posit32.cospi", "exp", ""] {
        assert_eq!(tiers::by_name(name), None, "tier registry resolves '{name}'");
    }
    assert_eq!(tiers::by_slot(rlibm_math::stats::slot::COUNT), None);
}

#[test]
fn tier_counters_key_by_the_same_slots() {
    // The per-tier counter accessors must answer for every registry
    // slot (zero or more, never a panic), in both telemetry configs.
    for s in 0..rlibm_math::stats::slot::COUNT {
        let _ = rlibm_math::stats::tier_prefix(s);
        let _ = rlibm_math::stats::tier_full(s);
        let _ = rlibm_math::stats::tier_dd(s);
        let _ = rlibm_math::stats::fallbacks(s);
    }
}

#[test]
fn fallback_counters_key_by_the_same_names() {
    if !rlibm_math::stats::enabled() {
        return;
    }
    rlibm_math::stats::reset();
    for name in float_names() {
        // One guaranteed-fallback-free probe per function; the counter
        // lookup itself must resolve the name either way.
        let _ = rlibm_math::stats::fallbacks_f32(name);
    }
    for name in posit_names() {
        let _ = rlibm_math::stats::fallbacks_posit32(name);
    }
}
