//! Feature-matrix identity and flight-recorder coverage for the serving
//! stack.
//!
//! The standing rule for every observability layer in this repo: tracing
//! may *observe* the serve path but never alter it. The checksum test
//! pins the complete served output set (tag, input bits, output bits) to
//! a constant that must hold with the `telemetry` feature on or off —
//! ci runs this binary in both configurations.

use rlibm_serve::{serve_closed_loop, ServeConfig};

/// FNV-1a over the sorted (tag, x_bits, y_bits) rows of a fixed run.
/// The workload is a function of the seed alone and the run is healthy
/// (no deadline, no chaos, ample queues), so every submitted request
/// completes and the sorted rows are deterministic.
fn serve_output_checksum() -> u64 {
    let cfg = ServeConfig {
        shards: 3,
        producers: 2,
        requests: 50_000,
        queue_capacity: 512,
        seed: 0x7AC3_1D07,
        posit_permille: 350,
        ..ServeConfig::default()
    };
    let report = serve_closed_loop(&cfg).expect("healthy run");
    assert!(report.balanced());
    assert_eq!(report.completions.len() as u64, cfg.requests);
    let mut rows: Vec<(u64, u32, u32)> =
        report.completions.iter().map(|c| (c.tag, c.x_bits, c.y_bits)).collect();
    rows.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (tag, x, y) in rows {
        for b in tag
            .to_le_bytes()
            .iter()
            .chain(x.to_le_bytes().iter())
            .chain(y.to_le_bytes().iter())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The pinned constant: bit-identical served outputs with `telemetry`
/// (and `simd`, and `fault`) on or off. If a code change legitimately
/// alters the workload or kernels, update this constant in the same
/// change — never to absorb a tracing-dependent difference.
const PINNED_SERVE_CHECKSUM: u64 = 0x352E_AA53_D584_50B6;

#[test]
fn serve_output_checksum_is_pinned_across_feature_matrix() {
    assert_eq!(
        serve_output_checksum(),
        PINNED_SERVE_CHECKSUM,
        "served output set changed (or became feature-dependent)"
    );
}

/// Attribution sums are populated exactly when tracing is compiled in,
/// and cover every workload function on a run big enough to sample all
/// of them.
#[test]
fn attribution_is_exhaustive_when_enabled_and_zero_otherwise() {
    let cfg = ServeConfig {
        shards: 2,
        producers: 2,
        requests: 60_000,
        queue_capacity: 512,
        seed: 0xA77B_1B07,
        posit_permille: 450,
        ..ServeConfig::default()
    };
    let report = serve_closed_loop(&cfg).expect("healthy run");
    assert!(report.balanced());
    for (f, a) in report.attribution.iter().enumerate() {
        if rlibm_obs::enabled() {
            // ~3.3k requests per function, 1/16 sampled: every function
            // must carry samples and kernel time.
            assert!(a.samples > 0, "func {f} has no sampled completions");
            assert!(a.kernel_ns > 0, "func {f} has no kernel time");
            assert!(a.kernel_lanes > 0 && a.batches > 0);
            assert!(a.kernel_ns >= a.fallback_ns, "fallback exceeds kernel time");
        } else {
            assert_eq!(*a, rlibm_serve::StageAttribution::default());
        }
    }
    if rlibm_obs::enabled() {
        let samples: u64 = report.attribution.iter().map(|a| a.samples).sum();
        // 1/16 deterministic tag-hash sampling: the sample count is an
        // exact function of the tag set. Loose envelope only.
        assert!(samples > 1_000 && samples < 10_000, "sample count {samples} off envelope");
    }
    assert!(report.flight.is_empty(), "healthy run must not dump the flight recorder");
}

/// Panic and corruption chaos must produce flight dumps (when tracing is
/// compiled in) whose event windows actually contain the failure
/// exemplars.
#[cfg(feature = "fault")]
#[test]
fn chaos_failures_dump_the_flight_recorder() {
    suppress_chaos_panic_output();
    let report = serve_closed_loop(&ServeConfig {
        shards: 2,
        producers: 2,
        requests: 30_000,
        queue_capacity: 256,
        seed: 0xF11D_0D07,
        posit_permille: 300,
        restart_backoff_ns: 1_000,
        max_restarts: u32::MAX,
        chaos: Some(rlibm_serve::ChaosConfig {
            seed: 0xC0FE,
            panic_per_million: 20_000,
            corrupt_per_million: 10_000,
            ..rlibm_serve::ChaosConfig::default()
        }),
        ..ServeConfig::default()
    })
    .expect("supervised run");
    assert!(report.balanced());
    assert!(report.panics > 0 && report.chaos.corruptions > 0, "chaos must inject");
    if !rlibm_obs::enabled() {
        assert!(report.flight.is_empty(), "no dumps without the telemetry feature");
        return;
    }
    assert!(!report.flight.is_empty(), "failures must dump the recorder");
    assert!(
        report.flight.iter().any(|d| d.trigger == rlibm_serve::FlightTrigger::Panic),
        "at least one panic dump"
    );
    assert!(
        report.flight.iter().any(|d| d.trigger == rlibm_serve::FlightTrigger::Corruption),
        "at least one corruption dump"
    );
    for dump in &report.flight {
        assert!(!dump.events.is_empty(), "a dump with tracing on cannot be empty");
        assert!(dump.events.len() <= rlibm_serve::FLIGHT_EVENTS);
        assert!(
            dump.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "dump events must be time-ordered"
        );
    }
    // The corruption dump window holds the corrupted-shed exemplar that
    // triggered it (it is emitted immediately before the capture).
    let corr = report
        .flight
        .iter()
        .find(|d| d.trigger == rlibm_serve::FlightTrigger::Corruption)
        .expect("checked above");
    assert!(
        corr.events
            .iter()
            .any(|e| e.kind == rlibm_obs::trace::TraceKind::ShedCorrupted),
        "corruption dump must contain the shed exemplar"
    );
    // Per-shard dump cap holds even under a panic storm.
    for shard in 0..report.shards {
        let n = report.flight.iter().filter(|d| d.shard == shard).count();
        assert!(n <= rlibm_serve::FLIGHT_DUMPS_PER_SHARD, "shard {shard} exceeded the dump cap");
    }
}

#[cfg(feature = "fault")]
fn suppress_chaos_panic_output() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}
