//! The serveable function table and synthetic traffic generation.
//!
//! Requests address functions by a dense `u8` id: `0..10` are the f32
//! tier-1 functions (batched through the staged slice kernels), `10..18`
//! are the posit32 functions (batched through the chunked posit slice
//! entry). Ids are stable — they appear in `BENCH_serve.json` rows via
//! [`func_name`].
//!
//! Traffic synthesis reuses the workspace PRNG ([`XorShift64`]) and the
//! domain-biased f32 sampler shared with the fault and telemetry sweeps
//! ([`rlibm_fp::rng::draw_biased_f32`]): three draws in four land in the
//! kernel-reaching domain, the fourth is a raw bit pattern so specials
//! keep exercising the rescalar path. Posit inputs are raw bit patterns
//! (every u32 is a valid posit32; NaR lanes resolve like the scalar API).

use rlibm_fp::rng::XorShift64;
use rlibm_math::slice;
use rlibm_posit::Posit32;

/// Number of f32 function ids (`0..F32_FUNCS`).
pub const F32_FUNCS: usize = 10;
/// Total function ids; `F32_FUNCS..NUM_FUNCS` are posit32.
pub const NUM_FUNCS: usize = 18;

const F32_NAMES: [&str; F32_FUNCS] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];

/// A batched slice entry point (`out[i] = f(xs[i])`, bit-identical to
/// the scalar function).
pub type SliceFn = fn(&[f32], &mut [f32]);

const F32_SLICE: [SliceFn; F32_FUNCS] = [
    slice::ln_slice,
    slice::log2_slice,
    slice::log10_slice,
    slice::exp_slice,
    slice::exp2_slice,
    slice::exp10_slice,
    slice::sinh_slice,
    slice::cosh_slice,
    slice::sinpi_slice,
    slice::cospi_slice,
];

const POSIT_NAMES: [&str; NUM_FUNCS - F32_FUNCS] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];

/// True when the id addresses a posit32 function.
#[inline]
pub fn is_posit(func: u8) -> bool {
    (func as usize) >= F32_FUNCS
}

/// Folds an arbitrary id into the valid range (requests built through
/// this module are always in range; the fold keeps the shard worker
/// total for ids that aren't).
#[inline]
pub(crate) fn fold(func: u8) -> usize {
    func as usize % NUM_FUNCS
}

/// The paper-table name behind an id (`"posit32/<name>"` for posit ids).
pub fn func_name(func: u8) -> &'static str {
    let f = fold(func);
    if f < F32_FUNCS {
        F32_NAMES[f]
    } else {
        POSIT_NAMES[f - F32_FUNCS]
    }
}

/// Display label for report rows: f32 names bare, posit ids prefixed.
pub fn func_label(func: u8) -> String {
    if is_posit(func) {
        format!("posit32_{}", func_name(func))
    } else {
        func_name(func).to_owned()
    }
}

/// Batched evaluation of an f32 id over a staged slice.
#[inline]
pub(crate) fn f32_slice_eval(func: u8, xs: &[f32], out: &mut [f32]) {
    F32_SLICE[fold(func).min(F32_FUNCS - 1)](xs, out)
}

/// Batched evaluation of a posit id over a chunk (routes through
/// `eval_slice_posit32` so the `runtime.slice.posit32.*` counters see
/// serving traffic).
#[inline]
pub(crate) fn posit_slice_eval(func: u8, xs: &[Posit32], out: &mut [Posit32]) {
    let ok = slice::eval_slice_posit32(func_name(func), xs, out).is_ok();
    debug_assert!(ok, "posit table names always dispatch");
}

/// Scalar reference for an id (used by harnesses to verify that served
/// responses are bit-identical to the scalar two-tier functions).
pub fn scalar_eval_bits(func: u8, x_bits: u32) -> u32 {
    if is_posit(func) {
        rlibm_math::eval_posit32_by_name(func_name(func), Posit32::from_bits(x_bits))
            .map_or(0, Posit32::to_bits)
    } else {
        rlibm_math::eval_f32_by_name(func_name(func), f32::from_bits(x_bits))
            .map_or(0, f32::to_bits)
    }
}

/// Counts completions whose served bits differ from the scalar two-tier
/// reference — the harnesses' shared "zero mis-rounded outputs escape"
/// check (serve_bench asserts it on every run, chaos_bench under
/// injection).
pub fn count_mismatches(completions: &[crate::Completion]) -> u64 {
    completions
        .iter()
        .filter(|c| c.y_bits != scalar_eval_bits(c.func, c.x_bits))
        .count() as u64
}

/// Draws a function id: `posit_permille` of traffic (out of 1000) goes
/// to the posit table, the rest spreads uniformly over the f32 table.
pub fn pick_func(rng: &mut XorShift64, posit_permille: u32) -> u8 {
    if rng.next_u64() % 1000 < posit_permille as u64 {
        (F32_FUNCS as u64 + rng.next_u64() % (NUM_FUNCS - F32_FUNCS) as u64) as u8
    } else {
        (rng.next_u64() % F32_FUNCS as u64) as u8
    }
}

/// Synthesizes one request payload for the id.
pub fn synth_bits(rng: &mut XorShift64, func: u8) -> u32 {
    if is_posit(func) {
        rng.next_u32()
    } else {
        rlibm_fp::rng::draw_biased_f32(rng, func_name(func)).to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_cover_both_tables() {
        for f in 0..NUM_FUNCS as u8 {
            assert_eq!(is_posit(f), f >= F32_FUNCS as u8);
            assert!(!func_name(f).is_empty());
        }
        assert_eq!(func_label(0), "ln");
        assert_eq!(func_label(10), "posit32_ln");
    }

    #[test]
    fn scalar_reference_matches_direct_calls() {
        let x = 1.7f32;
        assert_eq!(scalar_eval_bits(3, x.to_bits()), rlibm_math::exp(x).to_bits());
        let p = Posit32::from_f64(2.5);
        assert_eq!(
            scalar_eval_bits(13, p.to_bits()),
            rlibm_math::eval_posit32_by_name("exp", p).map_or(0, Posit32::to_bits)
        );
    }

    #[test]
    fn pick_respects_posit_share() {
        let mut rng = XorShift64::new(7);
        let mut posit = 0u32;
        for _ in 0..10_000 {
            let f = pick_func(&mut rng, 250);
            assert!((f as usize) < NUM_FUNCS);
            posit += u32::from(is_posit(f));
        }
        assert!((2000..3000).contains(&posit), "got {posit} posit picks");
        let mut rng = XorShift64::new(8);
        assert!((0..10_000).all(|_| !is_posit(pick_func(&mut rng, 0))));
    }
}
