//! Flight-recorder glue and per-function latency attribution for the
//! serving layer.
//!
//! Two complementary surfaces ride on `rlibm_obs::trace`:
//!
//! * **Attribution** — each shard accumulates exact per-function sums of
//!   where sampled requests spent their time (queue wait, batch
//!   residency, kernel, rescalar fallback) in plain `u64` fields of
//!   [`StageAttribution`]; the driver merges them into
//!   `ServeReport::attribution`. Like `ChaosStats`, these are worker-
//!   local and race-free by construction — the `serve.trace.*`
//!   histograms in [`crate::metrics`] carry the same data as
//!   distributions.
//! * **Flight dumps** — when a shard panics, restarts, or detects its
//!   first corrupted request, the supervisor snapshots every trace ring
//!   and keeps the last [`FLIGHT_EVENTS`] events across all threads as a
//!   [`FlightDump`], attached to `ServeReport::flight`. Dumps are capped
//!   at [`FLIGHT_DUMPS_PER_SHARD`] per shard so a panic storm cannot
//!   grow the report without bound.
//!
//! Everything here observes and never alters: the served bit patterns
//! are pinned identical with tracing compiled in or out.

use crate::shard::ShedReason;
use crate::workload;
use rlibm_obs::trace::{self, TraceEvent, TraceKind};

/// Last-N window a [`FlightDump`] keeps after merging all rings.
pub const FLIGHT_EVENTS: usize = 256;

/// Maximum dumps one shard may contribute to a run's report.
pub const FLIGHT_DUMPS_PER_SHARD: usize = 4;

/// Exact per-function sums of sampled-request latency attribution.
/// Per-request stages (queue, batch) sum over sampled completions;
/// per-batch stages (kernel, fallback) sum over every timed flush of the
/// function, with `kernel_lanes` as their denominator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageAttribution {
    /// Sampled requests that completed (denominator for `queue_ns` and
    /// `batch_ns`).
    pub samples: u64,
    /// Sum of enqueue→dequeue wait over sampled completions, ns.
    pub queue_ns: u64,
    /// Sum of dequeue→kernel-start residency over sampled completions,
    /// ns.
    pub batch_ns: u64,
    /// Sum of kernel (slice eval) time over timed flushes, ns. Includes
    /// `fallback_ns`, which attributes the rescalar share of it.
    pub kernel_ns: u64,
    /// Rescalar-lane scalar-path time within those flushes, ns.
    pub fallback_ns: u64,
    /// Lanes across timed flushes (denominator for the kernel stages).
    pub kernel_lanes: u64,
    /// Timed flushes.
    pub batches: u64,
}

impl StageAttribution {
    /// Field-wise accumulation (driver-side shard merge).
    pub fn merge(&mut self, o: &StageAttribution) {
        self.samples += o.samples;
        self.queue_ns += o.queue_ns;
        self.batch_ns += o.batch_ns;
        self.kernel_ns += o.kernel_ns;
        self.fallback_ns += o.fallback_ns;
        self.kernel_lanes += o.kernel_lanes;
        self.batches += o.batches;
    }
}

/// What made the supervisor dump the flight recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightTrigger {
    /// A worker panic was caught (the dump precedes salvage/restart).
    Panic,
    /// The shard detected its first corrupted request.
    Corruption,
}

/// One flight-recorder dump: the last [`FLIGHT_EVENTS`] trace events
/// across every thread, captured at a failure point. Empty `events`
/// only when tracing is compiled out (the capture is skipped entirely
/// then).
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Shard whose supervisor captured the dump.
    pub shard: usize,
    /// Why it was captured.
    pub trigger: FlightTrigger,
    /// Capture time, ns since the trace epoch.
    pub at_ns: u64,
    /// The shard's restart count at capture time.
    pub restarts: u64,
    /// Last events across all rings, ascending by timestamp.
    pub events: Vec<TraceEvent>,
}

/// Snapshots every trace ring and keeps the newest [`FLIGHT_EVENTS`]
/// events overall. Callers gate on `rlibm_obs::enabled()` and the
/// per-shard dump cap.
pub(crate) fn capture_flight(shard: usize, trigger: FlightTrigger, restarts: u64) -> FlightDump {
    let mut events: Vec<TraceEvent> =
        trace::snapshot_rings().into_iter().flat_map(|t| t.events).collect();
    events.sort_by_key(|e| e.ts_ns);
    let excess = events.len().saturating_sub(FLIGHT_EVENTS);
    events.drain(..excess);
    FlightDump { shard, trigger, at_ns: trace::now_ns(), restarts, events }
}

/// The trace kind encoding a shed reason (the payload byte then carries
/// the input bits, the exemplar).
pub fn shed_kind(reason: ShedReason) -> TraceKind {
    match reason {
        ShedReason::Deadline => TraceKind::ShedDeadline,
        ShedReason::Backpressure => TraceKind::ShedBackpressure,
        ShedReason::AdmissionClosed => TraceKind::ShedAdmission,
        ShedReason::Corrupted => TraceKind::ShedCorrupted,
        ShedReason::Poisoned => TraceKind::ShedPoisoned,
    }
}

/// Emits the exemplar event for a shed: kind = reason, aux = folded
/// function id, payload = the input bit pattern. Sheds bypass sampling
/// — every one is recorded (ring-bounded).
#[inline]
pub(crate) fn shed_event(func: u8, x_bits: u32, tag: u64, reason: ShedReason) {
    trace::emit(shed_kind(reason), workload::fold(func) as u8, tag, x_bits);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_kinds_are_distinct_per_reason() {
        let reasons = [
            ShedReason::Deadline,
            ShedReason::Backpressure,
            ShedReason::AdmissionClosed,
            ShedReason::Corrupted,
            ShedReason::Poisoned,
        ];
        let mut kinds: Vec<u8> = reasons.iter().map(|&r| shed_kind(r) as u8).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), reasons.len());
    }

    #[test]
    fn attribution_merge_is_fieldwise() {
        let mut a = StageAttribution {
            samples: 1,
            queue_ns: 10,
            batch_ns: 20,
            kernel_ns: 30,
            fallback_ns: 5,
            kernel_lanes: 64,
            batches: 1,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            StageAttribution {
                samples: 2,
                queue_ns: 20,
                batch_ns: 40,
                kernel_ns: 60,
                fallback_ns: 10,
                kernel_lanes: 128,
                batches: 2,
            }
        );
    }
}
