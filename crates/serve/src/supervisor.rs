//! Shard supervision: panic isolation, capped-backoff restarts, and the
//! graceful-drain protocol.
//!
//! Each worker thread runs [`supervise_shard`] instead of a bare worker
//! loop. The supervisor owns the shard's [`ShardState`] (completion and
//! shed logs, in-flight batch accumulators, chaos state) and runs the
//! actual worker body ([`crate::shard::shard_pass`]) under
//! `catch_unwind`, so a panic — injected by the chaos harness or real —
//! can never take the completion log with it:
//!
//! 1. the panic is counted (`serve.shard<i>.panics`) and the in-flight
//!    batches are **salvaged**: every buffered request is requeued onto
//!    the shard's own ring (it will be served on the next pass), or, if
//!    the ring is full, shed explicitly as
//!    [`crate::ShedReason::Poisoned`] — never silently dropped;
//! 2. the shard **restarts** (`serve.shard<i>.restarts`) after a capped
//!    exponential backoff (`restart_backoff_ns << n`, capped at 64×);
//! 3. a shard that exhausts `max_restarts` **gives up deterministically**:
//!    it stops serving and drains its ring into `Poisoned` shed records
//!    until the stop flag is raised, so producers never wedge and the
//!    exactly-once accounting still balances. The failure is reported in
//!    `ServeReport::failed_shards`, not hidden.
//!
//! [`ServiceControl`] carries the two-phase shutdown protocol: closing
//! **admission** stops producers from submitting new work (each
//! unsubmitted request becomes an explicit `AdmissionClosed` shed);
//! raising **stop** tells workers to flush their partial batches and
//! exit once their ring is dry. The driver's drain sequence — close
//! admission, join producers, raise stop, join workers — yields a
//! [`ShardQuiesce`] per shard recording how much in-flight work the
//! drain had to retire.

use crate::chaos::{ChaosConfig, ChaosStats};
use crate::flight::{self, FlightDump, FlightTrigger, StageAttribution};
use crate::metrics;
use crate::queue::MpmcQueue;
use crate::shard::{shard_pass, Request, Shed, ShedReason, ShardState};
use crate::workload;
use rlibm_obs::trace::{self, TraceKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Shared shutdown/drain state between the driver, producers and
/// shards.
pub struct ServiceControl {
    admission_closed: AtomicBool,
    stop: AtomicBool,
}

impl Default for ServiceControl {
    fn default() -> ServiceControl {
        ServiceControl::new()
    }
}

impl ServiceControl {
    pub fn new() -> ServiceControl {
        ServiceControl {
            admission_closed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    /// Phase 1 of drain: no new requests are admitted. Producers shed
    /// everything they have not yet submitted as `AdmissionClosed`.
    pub fn close_admission(&self) {
        self.admission_closed.store(true, Ordering::Release);
    }

    /// True once admission has been closed.
    pub fn admission_closed(&self) -> bool {
        self.admission_closed.load(Ordering::Acquire)
    }

    /// Phase 2 of drain: workers flush partial batches and exit once
    /// their ring is observed empty. Only raised after every producer
    /// has joined, so no push can race the stop flag.
    pub(crate) fn raise_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// True once the stop flag is raised.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Per-shard drain accounting, reported in `ServeReport::quiesce`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardQuiesce {
    /// Which shard this entry describes.
    pub shard: usize,
    /// Requests dequeued after the stop flag was observed — the ring
    /// backlog the drain retired.
    pub drained_requests: u64,
    /// Lanes flushed from partial batches during the drain.
    pub trailing_flush_lanes: u64,
}

/// Everything one supervised shard hands back to the driver.
pub(crate) struct ShardOutcome {
    pub completions: Vec<crate::shard::Completion>,
    pub sheds: Vec<Shed>,
    pub panics: u64,
    pub restarts: u64,
    pub gave_up: bool,
    pub chaos: ChaosStats,
    pub quiesce: ShardQuiesce,
    pub attribution: [StageAttribution; workload::NUM_FUNCS],
    pub flight: Vec<FlightDump>,
}

/// Backoff before restart `n` (0-based): `base << n`, capped at 64×.
pub(crate) fn restart_backoff(base_ns: u64, restart: u64) -> Duration {
    let shift = restart.min(6) as u32;
    Duration::from_nanos(base_ns.saturating_mul(1u64 << shift))
}

/// Runs one shard under supervision until quiesce (or until its restart
/// budget is exhausted and its ring has been drained into explicit shed
/// records). Never unwinds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_shard(
    shard: usize,
    queue: &MpmcQueue<Request>,
    ctrl: &ServiceControl,
    epoch: Instant,
    expected: usize,
    max_restarts: u32,
    restart_backoff_ns: u64,
    chaos_cfg: Option<&ChaosConfig>,
) -> ShardOutcome {
    let mut state = ShardState::new(shard, expected, chaos_cfg);
    state.chaos.arm_kernel();
    let mut panics = 0u64;
    let mut restarts = 0u64;
    let mut gave_up = false;
    loop {
        let pass = catch_unwind(AssertUnwindSafe(|| {
            shard_pass(shard, queue, ctrl, epoch, &mut state);
        }));
        match pass {
            Ok(()) => break, // clean quiesce
            Err(payload) => {
                drop(payload);
                panics += 1;
                metrics::panics(shard).add(1);
                // Flight recorder: the dump happens *before* salvage, so
                // the last events leading into the panic are preserved
                // exactly as the failing pass wrote them.
                trace::emit(TraceKind::PanicCaught, shard as u8, shard as u64, restarts as u32);
                if rlibm_obs::enabled() && state.flight.len() < flight::FLIGHT_DUMPS_PER_SHARD {
                    state
                        .flight
                        .push(flight::capture_flight(shard, FlightTrigger::Panic, restarts));
                }
                if restarts >= u64::from(max_restarts) {
                    // Budget exhausted: stop serving, but leave nothing
                    // unaccounted — batches and ring drain into
                    // explicit Poisoned sheds.
                    salvage_batches(queue, &mut state, false);
                    drain_to_sheds(queue, ctrl, &mut state);
                    gave_up = true;
                    break;
                }
                // Salvage the in-flight batches (requeue, shed on a
                // full ring), then restart after a capped backoff.
                salvage_batches(queue, &mut state, true);
                std::thread::sleep(restart_backoff(restart_backoff_ns, restarts));
                restarts += 1;
                metrics::restarts(shard).add(1);
                trace::emit(TraceKind::Restart, shard as u8, shard as u64, restarts as u32);
            }
        }
    }
    state.chaos.disarm_kernel();
    ShardOutcome {
        completions: state.completions,
        sheds: state.sheds,
        panics,
        restarts,
        gave_up,
        chaos: state.chaos.stats,
        quiesce: state.quiesce,
        attribution: state.attribution,
        flight: state.flight,
    }
}

/// Moves every request buffered in the in-flight batches back onto the
/// ring (`requeue`), or straight into `Poisoned` shed records when
/// requeueing is off or the ring is full. Fields were captured at
/// enqueue time, so the rebuilt request carries the original tag,
/// timestamps and a valid checksum.
fn salvage_batches(queue: &MpmcQueue<Request>, state: &mut ShardState, requeue: bool) {
    for f in 0..workload::NUM_FUNCS {
        for i in 0..state.batches[f].len {
            let b = &state.batches[f];
            let req = Request::new(f as u8, b.x_bits[i], b.tag[i], b.t_enq[i], b.deadline[i]);
            if !requeue || queue.push(req).is_err() {
                state.shed(req.func, req.x_bits, req.tag, ShedReason::Poisoned);
            }
        }
        state.batches[f].len = 0;
    }
}

/// Terminal drain for a shard that gave up: pops until the stop flag is
/// raised and the ring is dry, turning every request into an explicit
/// `Poisoned` shed so producers never block on a dead shard and the
/// exactly-once accounting still balances.
fn drain_to_sheds(queue: &MpmcQueue<Request>, ctrl: &ServiceControl, state: &mut ShardState) {
    loop {
        match queue.pop() {
            Some(req) => state.shed(req.func, req.x_bits, req.tag, ShedReason::Poisoned),
            None => {
                if ctrl.stopping() && queue.is_empty() {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let base = 1_000u64;
        assert_eq!(restart_backoff(base, 0), Duration::from_nanos(1_000));
        assert_eq!(restart_backoff(base, 1), Duration::from_nanos(2_000));
        assert_eq!(restart_backoff(base, 6), Duration::from_nanos(64_000));
        // Cap: no further doubling past 64×.
        assert_eq!(restart_backoff(base, 7), Duration::from_nanos(64_000));
        assert_eq!(restart_backoff(base, 1_000), Duration::from_nanos(64_000));
        // Saturating on absurd bases rather than overflowing.
        assert_eq!(restart_backoff(u64::MAX, 6), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn control_flags_sequence() {
        let ctrl = ServiceControl::new();
        assert!(!ctrl.admission_closed());
        assert!(!ctrl.stopping());
        ctrl.close_admission();
        assert!(ctrl.admission_closed());
        assert!(!ctrl.stopping());
        ctrl.raise_stop();
        assert!(ctrl.stopping());
    }
}
