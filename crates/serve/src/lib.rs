//! rlibm-serve — a sharded, thread-per-core serving layer over the
//! slice kernels.
//!
//! The shape of a production deployment, scaled to whatever the host
//! offers: one worker thread ("shard") per core, each owning a bounded
//! lock-free MPMC ring ([`queue::MpmcQueue`]) that producers push
//! requests into round-robin. Workers batch requests per function into
//! the 64-lane staged slice chunks (AVX2 under the `simd` feature) and
//! answer with bit patterns identical to the scalar two-tier functions
//! — the correctness contract of the whole stack carries through the
//! service unchanged. Backpressure is structural: full rings push back
//! on producers, so overload degrades throughput, not memory.
//!
//! There is no per-request allocation anywhere on the serve path: rings
//! and accumulators are fixed arrays, staging buffers live on the worker
//! stack, and the completion logs are pre-sized by the driver.
//!
//! Per-shard observability rides on `rlibm-obs` ([`metrics`]): request
//! and batch counters, batch fill lanes, a queue-depth histogram and a
//! per-request latency log2 histogram, all no-ops unless built with the
//! `telemetry` feature.
//!
//! [`serve_closed_loop`] is the in-process driver used by `serve_bench`:
//! it spawns the shards and a set of synthetic-workload producers
//! (XorShift64-seeded, domain-biased — see [`workload`]), runs the
//! closed loop to completion, and returns every completion with its
//! measured latency.

pub mod metrics;
pub mod queue;
mod shard;
pub mod workload;

pub use shard::{Completion, Request, BATCH};

use queue::MpmcQueue;
use rlibm_fp::rng::XorShift64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Closed-loop service run configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (clamped to `1..=`[`metrics::MAX_SHARDS`]).
    pub shards: usize,
    /// Producer threads synthesizing the workload (min 1).
    pub producers: usize,
    /// Total requests across all producers.
    pub requests: u64,
    /// Ring capacity per shard (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Workload seed; producer `p` derives its own stream from it.
    pub seed: u64,
    /// Share of traffic (out of 1000) routed to the posit32 table.
    pub posit_permille: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: std::thread::available_parallelism().map_or(1, usize::from),
            producers: 2,
            requests: 1 << 20,
            queue_capacity: 1024,
            seed: 0x524C_4942_4D33_32A1,
            posit_permille: 250,
        }
    }
}

/// Everything a closed-loop run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Every served request with its measured latency (order is
    /// per-shard completion order, shards concatenated).
    pub completions: Vec<Completion>,
    /// Wall-clock duration of the whole run in nanoseconds.
    pub elapsed_ns: u64,
    /// Shard count actually used (after clamping).
    pub shards: usize,
    /// Producer count actually used.
    pub producers: usize,
}

impl ServeReport {
    /// Overall throughput in requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.completions.len() as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// Runs the service as a closed loop: `producers` synthetic-workload
/// threads push `requests` total requests round-robin into the shard
/// rings (yield-spinning on backpressure), shards serve until every
/// producer has finished and the rings are dry, and every completion is
/// returned. Deterministic workload per seed; the serve outputs are
/// bit-identical to the scalar functions regardless of sharding.
pub fn serve_closed_loop(cfg: &ServeConfig) -> ServeReport {
    let shards = cfg.shards.clamp(1, metrics::MAX_SHARDS);
    let producers = cfg.producers.max(1);
    let total = cfg.requests;
    let queues: Vec<MpmcQueue<Request>> =
        (0..shards).map(|_| MpmcQueue::with_capacity(cfg.queue_capacity)).collect();
    let stop = AtomicBool::new(false);
    let epoch = Instant::now();
    // Round-robin routing bounds any shard's share of the traffic by
    // one extra request per producer; pad by a batch for slack so the
    // completion log never reallocates mid-run.
    let per_shard = (total as usize) / shards + producers + BATCH;
    let mut shard_logs: Vec<Vec<Completion>> = Vec::with_capacity(shards);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..shards)
            .map(|i| {
                let q = &queues[i];
                let stop = &stop;
                s.spawn(move || shard::shard_worker(i, q, stop, epoch, per_shard))
            })
            .collect();
        let prods: Vec<_> = (0..producers)
            .map(|p| {
                let queues = &queues;
                s.spawn(move || {
                    // Distinct, deterministic stream per producer.
                    let mut rng = XorShift64::new(
                        cfg.seed ^ (p as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let n = total / producers as u64
                        + u64::from((p as u64) < total % producers as u64);
                    let mut rr = p;
                    for j in 0..n {
                        let func = workload::pick_func(&mut rng, cfg.posit_permille);
                        let x_bits = workload::synth_bits(&mut rng, func);
                        let mut req = Request {
                            func,
                            x_bits,
                            tag: ((p as u32) << 24) | (j as u32 & 0x00FF_FFFF),
                            t_enqueue_ns: epoch.elapsed().as_nanos() as u64,
                        };
                        loop {
                            match queues[rr % shards].push(req) {
                                Ok(()) => break,
                                Err(back) => {
                                    // Ring full: structural backpressure.
                                    req = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        rr = rr.wrapping_add(1);
                    }
                })
            })
            .collect();
        for h in prods {
            let _ = h.join();
        }
        // All producers joined: nothing can push after this store, so a
        // worker observing stop && empty is truly done.
        stop.store(true, Ordering::Release);
        for h in workers {
            if let Ok(log) = h.join() {
                shard_logs.push(log);
            }
        }
    });
    let elapsed_ns = epoch.elapsed().as_nanos() as u64;
    let mut completions = Vec::with_capacity(total as usize);
    for log in shard_logs {
        completions.extend_from_slice(&log);
    }
    ServeReport { completions, elapsed_ns, shards, producers }
}

/// Forces every serve metric into the registry (see
/// [`metrics::register_metrics`]).
pub fn register_metrics() {
    metrics::register_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            shards: 2,
            producers: 2,
            requests: 10_000,
            queue_capacity: 256,
            seed: 0x5EED,
            posit_permille: 300,
        }
    }

    /// Every request is served exactly once and every response is
    /// bit-identical to the scalar two-tier function — the stack's
    /// correctness contract survives sharding, batching and SIMD.
    #[test]
    fn closed_loop_serves_everything_bit_identically() {
        let cfg = small_cfg();
        let report = serve_closed_loop(&cfg);
        assert_eq!(report.completions.len() as u64, cfg.requests);
        assert!(report.elapsed_ns > 0);
        let mut posit_seen = false;
        for c in &report.completions {
            let want = workload::scalar_eval_bits(c.func, c.x_bits);
            assert_eq!(
                c.y_bits,
                want,
                "func {} x {:#010x}: served {:#010x} vs scalar {:#010x}",
                workload::func_label(c.func),
                c.x_bits,
                c.y_bits,
                want
            );
            posit_seen |= workload::is_posit(c.func);
        }
        assert!(posit_seen, "posit share of the workload was served");
        // Tags are unique: each request completed exactly once.
        let mut tags: Vec<u32> = report.completions.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len() as u64, cfg.requests);
    }

    /// The served output set is a function of the seed alone — shard
    /// count, producer interleaving and queue capacity must not change
    /// what is computed, only when.
    #[test]
    fn serve_results_independent_of_sharding() {
        fn result_set(shards: usize, queue_capacity: usize) -> Vec<(u32, u32, u32)> {
            let report = serve_closed_loop(&ServeConfig {
                shards,
                queue_capacity,
                requests: 4_000,
                ..small_cfg()
            });
            let mut v: Vec<(u32, u32, u32)> =
                report.completions.iter().map(|c| (c.tag, c.x_bits, c.y_bits)).collect();
            v.sort_unstable();
            v
        }
        let a = result_set(1, 64);
        let b = result_set(4, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_observe_the_run_when_enabled() {
        register_metrics();
        let before = metrics::total_requests();
        let cfg = small_cfg();
        let report = serve_closed_loop(&cfg);
        assert_eq!(report.completions.len() as u64, cfg.requests);
        let after = metrics::total_requests();
        if rlibm_obs::enabled() {
            assert_eq!(after - before, cfg.requests);
        } else {
            assert_eq!(after, 0);
        }
    }

    #[test]
    fn config_clamps_are_safe() {
        let report = serve_closed_loop(&ServeConfig {
            shards: 0,
            producers: 0,
            requests: 100,
            queue_capacity: 0,
            seed: 1,
            posit_permille: 1000,
        });
        assert_eq!(report.shards, 1);
        assert_eq!(report.producers, 1);
        assert_eq!(report.completions.len(), 100);
        assert!(report.completions.iter().all(|c| workload::is_posit(c.func)));
    }
}
