//! rlibm-serve — a sharded, thread-per-core serving layer over the
//! slice kernels, with a supervision and failure-handling layer that
//! carries the correctness contract through crashes and overload.
//!
//! The shape of a production deployment, scaled to whatever the host
//! offers: one worker thread ("shard") per core, each owning a bounded
//! lock-free MPMC ring ([`queue::MpmcQueue`]) that producers push
//! requests into round-robin. Workers batch requests per function into
//! the 64-lane staged slice chunks (AVX2 under the `simd` feature) and
//! answer with bit patterns identical to the scalar two-tier functions
//! — the correctness contract of the whole stack carries through the
//! service unchanged.
//!
//! The failure model extends the contract to the service layer itself
//! (see DESIGN.md "Failure model"):
//!
//! * **Panic-isolated shards** — each worker body runs under
//!   `catch_unwind` in a per-shard supervisor ([`supervisor`]) that
//!   salvages the in-flight completion log and batches, requeues or
//!   sheds the poisoned work, and restarts the shard with capped
//!   exponential backoff. A shard that exhausts its restart budget
//!   gives up *accountably*: its backlog becomes explicit
//!   [`ShedReason::Poisoned`] records and the failure is surfaced in
//!   [`ServeReport::failed_shards`].
//! * **Deadlines and load shedding** — every [`Request`] carries a
//!   deadline; past-deadline requests are shed as explicit
//!   [`ShedReason::Deadline`] records, and producers push with a
//!   bounded backoff budget, shedding [`ShedReason::Backpressure`] on
//!   a persistently full ring instead of spinning forever. Nothing is
//!   ever silently lost: `completions + sheds == submitted` always
//!   ([`ServeReport::balanced`]).
//! * **Graceful drain** — shutdown is a two-phase protocol on
//!   [`supervisor::ServiceControl`]: close admission (producers shed
//!   unsubmitted work as [`ShedReason::AdmissionClosed`]), then stop
//!   workers once the rings are flushed; the per-shard
//!   [`supervisor::ShardQuiesce`] report accounts for the retired
//!   backlog.
//! * **Integrity checks** — requests carry an enqueue-time checksum
//!   verified at dequeue; a corrupted ring slot is detected and shed as
//!   [`ShedReason::Corrupted`], never served with a wrong argument.
//! * **Chaos injection** (feature `fault`, [`chaos`]) — seeded shard
//!   panics, delayed flushes, request corruption and kernel-level fault
//!   arming, driven at scale by the `chaos_bench` harness.
//!
//! There is no per-request allocation anywhere on the serve path: rings
//! and accumulators are fixed arrays, staging buffers live on the worker
//! stack, and the completion logs are pre-sized by the driver.
//!
//! Per-shard observability rides on `rlibm-obs` ([`metrics`]): request,
//! batch, panic and restart counters, shed counters by reason, a
//! queue-depth histogram and a per-request latency log2 histogram, all
//! no-ops unless built with the `telemetry` feature.
//!
//! [`serve_closed_loop`] is the in-process driver used by `serve_bench`
//! and `chaos_bench`: it spawns the supervised shards and a set of
//! synthetic-workload producers (XorShift64-seeded, domain-biased — see
//! [`workload`]), runs the closed loop to completion through the drain
//! protocol, and returns every completion and shed record.

pub mod chaos;
pub mod flight;
pub mod metrics;
pub mod queue;
mod shard;
pub mod supervisor;
pub mod workload;

pub use chaos::{ChaosConfig, ChaosStats};
pub use flight::{
    FlightDump, FlightTrigger, StageAttribution, FLIGHT_DUMPS_PER_SHARD, FLIGHT_EVENTS,
};
pub use shard::{make_tag, Completion, Request, Shed, ShedReason, BATCH, NO_DEADLINE, TAG_SEQ_BITS};
pub use supervisor::{ServiceControl, ShardQuiesce};

use queue::MpmcQueue;
use rlibm_fp::rng::XorShift64;
use rlibm_obs::trace::{self, TraceKind};
use std::time::Instant;

/// Producer indices must fit the tag's high bits.
pub const MAX_PRODUCERS: usize = 1 << 24;

/// Closed-loop service run configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (clamped to `1..=`[`metrics::MAX_SHARDS`]).
    pub shards: usize,
    /// Producer threads synthesizing the workload (min 1).
    pub producers: usize,
    /// Total requests across all producers.
    pub requests: u64,
    /// Ring capacity per shard (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Workload seed; producer `p` derives its own stream from it.
    pub seed: u64,
    /// Share of traffic (out of 1000) routed to the posit32 table.
    pub posit_permille: u32,
    /// Relative request deadline in ns (0 = no deadline): a request
    /// still queued `deadline_ns` after its enqueue is shed as
    /// [`ShedReason::Deadline`] instead of served.
    pub deadline_ns: u64,
    /// Producer push budget: attempts (spin, then yield) against a full
    /// ring before the request is shed as
    /// [`ShedReason::Backpressure`]. Min 1.
    pub push_budget: u32,
    /// Per-shard supervisor restart budget; a shard that panics more
    /// than this gives up and drains its backlog into
    /// [`ShedReason::Poisoned`] sheds.
    pub max_restarts: u32,
    /// Base supervisor backoff before a restart; doubles per restart,
    /// capped at 64×.
    pub restart_backoff_ns: u64,
    /// When nonzero, a monitor closes admission this many ns after the
    /// epoch — a mid-run graceful drain (producers shed the remainder
    /// as [`ShedReason::AdmissionClosed`]).
    pub drain_after_ns: u64,
    /// Chaos injection plan (requires the `fault` feature; see
    /// [`chaos`]). `None` = no injection.
    pub chaos: Option<ChaosConfig>,
    /// Trace sampling rate exponent: tag-hash sampling keeps 1 in
    /// `2^trace_sample_shift` requests (0 = every request; clamped to
    /// ≤ 32). No effect without the `telemetry` feature.
    pub trace_sample_shift: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: std::thread::available_parallelism().map_or(1, usize::from),
            producers: 2,
            requests: 1 << 20,
            queue_capacity: 1024,
            seed: 0x524C_4942_4D33_32A1,
            posit_permille: 250,
            deadline_ns: 0,
            push_budget: 1 << 16,
            max_restarts: 64,
            restart_backoff_ns: 100_000,
            drain_after_ns: 0,
            chaos: None,
            trace_sample_shift: trace::DEFAULT_SAMPLE_SHIFT,
        }
    }
}

/// Config rejected before any thread spawns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// More producers than the tag's high bits can index.
    TooManyProducers { producers: usize },
    /// A producer's request quota would overflow its 2^40 tag sequence
    /// space, breaking the exactly-once dedup check.
    TagSpaceOverflow { per_producer: u64 },
    /// A chaos plan was supplied but this build has the `fault` feature
    /// off — injection would silently not happen.
    ChaosRequiresFaultFeature,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooManyProducers { producers } => {
                write!(f, "{producers} producers exceed the 2^24 tag namespace")
            }
            ConfigError::TagSpaceOverflow { per_producer } => write!(
                f,
                "{per_producer} requests per producer exceed the 2^{TAG_SEQ_BITS} tag sequence space"
            ),
            ConfigError::ChaosRequiresFaultFeature => {
                write!(f, "chaos config supplied but the `fault` feature is compiled out")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A closed-loop run that could not account for every request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration was rejected up front.
    Config(ConfigError),
    /// A shard thread died outside the supervised region; its
    /// completion log is gone. (The supervisor catches worker panics,
    /// so this indicates a bug in the supervisor itself.)
    ShardLost { shard: usize },
    /// A producer thread panicked; the submitted-request ground truth
    /// is gone.
    ProducerLost { producer: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid serve config: {e}"),
            ServeError::ShardLost { shard } => {
                write!(f, "shard {shard} died outside supervision; its log is lost")
            }
            ServeError::ProducerLost { producer } => {
                write!(f, "producer {producer} panicked; submission accounting is lost")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> ServeError {
        ServeError::Config(e)
    }
}

impl ServeConfig {
    /// Rejects configurations whose failure-accounting guarantees could
    /// not hold: tag-space overflow (which would break exactly-once
    /// dedup) and chaos plans on builds that cannot inject.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let producers = self.producers.max(1);
        if producers > MAX_PRODUCERS {
            return Err(ConfigError::TooManyProducers { producers });
        }
        let per_producer = self.requests / producers as u64 + 1;
        if per_producer >= 1u64 << TAG_SEQ_BITS {
            return Err(ConfigError::TagSpaceOverflow { per_producer });
        }
        if self.chaos.is_some() && !chaos::injection_compiled_in() {
            return Err(ConfigError::ChaosRequiresFaultFeature);
        }
        Ok(())
    }
}

/// Everything a closed-loop run produced. `completions + sheds`
/// partition the submitted requests: nothing is ever silently lost
/// ([`ServeReport::balanced`]).
#[derive(Debug)]
pub struct ServeReport {
    /// Every served request with its measured latency (order is
    /// per-shard completion order, shards concatenated).
    pub completions: Vec<Completion>,
    /// Every explicitly shed request, with its reason (shard sheds
    /// first, then producer-side sheds).
    pub sheds: Vec<Shed>,
    /// Requests the producers generated (the accounting denominator).
    pub submitted: u64,
    /// Wall-clock duration of the whole run in nanoseconds.
    pub elapsed_ns: u64,
    /// Drain time: stop raised → last worker joined, in nanoseconds.
    pub drain_ns: u64,
    /// Shard count actually used (after clamping).
    pub shards: usize,
    /// Producer count actually used.
    pub producers: usize,
    /// Worker panics caught by the supervisors.
    pub panics: u64,
    /// Shard restarts the supervisors performed.
    pub restarts: u64,
    /// Shards that exhausted their restart budget and drained their
    /// backlog into `Poisoned` sheds. Empty on a healthy run.
    pub failed_shards: Vec<usize>,
    /// Exact chaos injection counts (all zero without the `fault`
    /// feature or with no chaos plan).
    pub chaos: ChaosStats,
    /// Per-shard drain accounting from the quiesce protocol.
    pub quiesce: Vec<ShardQuiesce>,
    /// Exact per-function latency attribution of trace-sampled requests
    /// (queue wait, batch residency, kernel, rescalar fallback), merged
    /// across shards. All zero without the `telemetry` feature.
    pub attribution: [StageAttribution; workload::NUM_FUNCS],
    /// Flight-recorder dumps captured at failure points (panics and
    /// first-corruption), in shard order. Empty on healthy runs and
    /// without the `telemetry` feature.
    pub flight: Vec<FlightDump>,
}

impl ServeReport {
    /// Overall throughput in requests per second (completions only).
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.completions.len() as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// The no-silent-loss invariant: every submitted request ended as
    /// exactly one completion or one explicit shed record.
    pub fn balanced(&self) -> bool {
        self.completions.len() as u64 + self.sheds.len() as u64 == self.submitted
    }

    /// Shed records with the given reason.
    pub fn shed_count(&self, reason: ShedReason) -> u64 {
        self.sheds.iter().filter(|s| s.reason == reason).count() as u64
    }
}

/// Requests producer `p` generates out of `total` split over
/// `producers` streams (round-robin remainder to the low indices).
pub fn producer_quota(total: u64, producers: usize, p: usize) -> u64 {
    total / producers as u64 + u64::from((p as u64) < total % producers as u64)
}

/// What one producer thread hands back: its explicit shed records.
struct ProducerOutcome {
    sheds: Vec<Shed>,
}

/// Bounded-backoff push: a few spins, then yields, up to `budget`
/// attempts. Returns the request on a persistently full ring (the
/// typed `Sheddable` outcome) or when admission closes mid-wait.
fn push_with_backoff(
    queue: &MpmcQueue<Request>,
    mut req: Request,
    budget: u32,
    ctrl: &ServiceControl,
) -> Result<u32, Request> {
    for attempt in 0..budget.max(1) {
        match queue.push(req) {
            Ok(()) => return Ok(attempt + 1),
            Err(back) => {
                req = back;
                if ctrl.admission_closed() {
                    return Err(req);
                }
                if attempt < 32 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    Err(req)
}

#[allow(clippy::too_many_arguments)]
fn producer_loop(
    p: usize,
    cfg: &ServeConfig,
    queues: &[MpmcQueue<Request>],
    shards: usize,
    producers: usize,
    ctrl: &ServiceControl,
    epoch: Instant,
) -> ProducerOutcome {
    // Distinct, deterministic stream per producer.
    let mut rng = XorShift64::new(cfg.seed ^ (p as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = producer_quota(cfg.requests, producers, p);
    let mut rr = p;
    let mut sheds = Vec::new();
    for j in 0..n {
        // Always draw the payload, even when shedding: the submitted
        // stream stays a function of the seed alone, so ground truth
        // (and the sharding-independence property) survives a drain.
        let func = workload::pick_func(&mut rng, cfg.posit_permille);
        let x_bits = workload::synth_bits(&mut rng, func);
        let tag = make_tag(p, j);
        if ctrl.admission_closed() {
            metrics::shed_counter(ShedReason::AdmissionClosed).add(1);
            flight::shed_event(func, x_bits, tag, ShedReason::AdmissionClosed);
            sheds.push(Shed { func, x_bits, tag, reason: ShedReason::AdmissionClosed });
            continue;
        }
        let t_enqueue_ns = epoch.elapsed().as_nanos() as u64;
        let deadline_ns = if cfg.deadline_ns == 0 {
            NO_DEADLINE
        } else {
            t_enqueue_ns.saturating_add(cfg.deadline_ns)
        };
        let req = Request::new(func, x_bits, tag, t_enqueue_ns, deadline_ns);
        match push_with_backoff(&queues[rr % shards], req, cfg.push_budget, ctrl) {
            // Record only contended pushes: a first-try success is the
            // overwhelmingly common case, and two histogram atomics per
            // request would tax the hot path just to count ones.
            Ok(attempts) => {
                if attempts > 1 {
                    metrics::push_attempts().record(u64::from(attempts));
                }
                // Open the span for trace-sampled requests (the shard
                // side agrees on the sample set via the same tag hash).
                if rlibm_obs::enabled() && trace::sampled(tag) {
                    trace::emit(TraceKind::Enqueue, workload::fold(func) as u8, tag, x_bits);
                }
            }
            Err(req) => {
                metrics::push_attempts().record(u64::from(cfg.push_budget.max(1)));
                let reason = if ctrl.admission_closed() {
                    ShedReason::AdmissionClosed
                } else {
                    ShedReason::Backpressure
                };
                metrics::shed_counter(reason).add(1);
                flight::shed_event(req.func, req.x_bits, req.tag, reason);
                sheds.push(Shed { func: req.func, x_bits: req.x_bits, tag: req.tag, reason });
            }
        }
        rr = rr.wrapping_add(1);
    }
    ProducerOutcome { sheds }
}

/// Runs the service as a closed loop: `producers` synthetic-workload
/// threads push `requests` total requests round-robin into the shard
/// rings (bounded-backoff, shedding on overflow), supervised shards
/// serve until the drain protocol completes, and every completion and
/// shed record is returned. Deterministic workload per seed; the serve
/// outputs are bit-identical to the scalar functions regardless of
/// sharding, supervision, or injected faults.
///
/// `Err` is reserved for runs whose accounting is genuinely lost (a
/// thread died outside supervision, or the config was rejected);
/// degraded-but-accounted runs — restarts, sheds, even a shard giving
/// up — come back as `Ok` with the damage itemized in the report.
pub fn serve_closed_loop(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    trace::set_sample_shift(cfg.trace_sample_shift);
    let shards = cfg.shards.clamp(1, metrics::MAX_SHARDS);
    let producers = cfg.producers.max(1);
    let total = cfg.requests;
    let queues: Vec<MpmcQueue<Request>> =
        (0..shards).map(|_| MpmcQueue::with_capacity(cfg.queue_capacity)).collect();
    let ctrl = ServiceControl::new();
    let epoch = Instant::now();
    // Round-robin routing bounds any shard's share of the traffic by
    // one extra request per producer; pad by a batch for slack so the
    // completion log never reallocates mid-run.
    let per_shard = (total as usize) / shards + producers + BATCH;
    let mut shard_outcomes: Vec<Option<supervisor::ShardOutcome>> = Vec::with_capacity(shards);
    let mut producer_outcomes: Vec<Option<ProducerOutcome>> = Vec::with_capacity(producers);
    let mut drain_ns = 0u64;
    std::thread::scope(|s| {
        if cfg.drain_after_ns > 0 {
            let ctrl = &ctrl;
            let drain_after = cfg.drain_after_ns;
            s.spawn(move || {
                // Mid-run drain monitor: close admission once the
                // deadline passes (or quit early if the run finished).
                while !ctrl.stopping() {
                    if epoch.elapsed().as_nanos() as u64 >= drain_after {
                        ctrl.close_admission();
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        let workers: Vec<_> = (0..shards)
            .map(|i| {
                let q = &queues[i];
                let ctrl = &ctrl;
                let chaos = cfg.chaos.as_ref();
                s.spawn(move || {
                    supervisor::supervise_shard(
                        i,
                        q,
                        ctrl,
                        epoch,
                        per_shard,
                        cfg.max_restarts,
                        cfg.restart_backoff_ns,
                        chaos,
                    )
                })
            })
            .collect();
        let prods: Vec<_> = (0..producers)
            .map(|p| {
                let queues = &queues;
                let ctrl = &ctrl;
                s.spawn(move || producer_loop(p, cfg, queues, shards, producers, ctrl, epoch))
            })
            .collect();
        for h in prods {
            producer_outcomes.push(h.join().ok());
        }
        // Drain: close admission (idempotent with the monitor), then —
        // with every producer joined, so nothing can race the flag —
        // raise stop. Workers flush partial batches and exit once their
        // rings are dry.
        ctrl.close_admission();
        ctrl.raise_stop();
        let drain_t0 = Instant::now();
        for h in workers {
            shard_outcomes.push(h.join().ok());
        }
        drain_ns = drain_t0.elapsed().as_nanos() as u64;
    });
    let elapsed_ns = epoch.elapsed().as_nanos() as u64;
    if let Some(p) = producer_outcomes.iter().position(Option::is_none) {
        return Err(ServeError::ProducerLost { producer: p });
    }
    if let Some(i) = shard_outcomes.iter().position(Option::is_none) {
        return Err(ServeError::ShardLost { shard: i });
    }
    let mut completions = Vec::with_capacity(total as usize);
    let mut sheds = Vec::new();
    let mut panics = 0u64;
    let mut restarts = 0u64;
    let mut failed_shards = Vec::new();
    let mut chaos_stats = ChaosStats::default();
    let mut quiesce = Vec::with_capacity(shards);
    let mut attribution = [StageAttribution::default(); workload::NUM_FUNCS];
    let mut flight = Vec::new();
    for (i, outcome) in shard_outcomes.into_iter().enumerate() {
        let o = outcome.unwrap_or_else(|| unreachable!("checked above"));
        completions.extend_from_slice(&o.completions);
        sheds.extend_from_slice(&o.sheds);
        panics += o.panics;
        restarts += o.restarts;
        if o.gave_up {
            failed_shards.push(i);
        }
        chaos_stats.accumulate(o.chaos);
        quiesce.push(o.quiesce);
        for (sum, part) in attribution.iter_mut().zip(o.attribution.iter()) {
            sum.merge(part);
        }
        flight.extend(o.flight);
    }
    for outcome in producer_outcomes.into_iter().flatten() {
        sheds.extend_from_slice(&outcome.sheds);
    }
    Ok(ServeReport {
        completions,
        sheds,
        submitted: total,
        elapsed_ns,
        drain_ns,
        shards,
        producers,
        panics,
        restarts,
        failed_shards,
        chaos: chaos_stats,
        quiesce,
        attribution,
        flight,
    })
}

/// Forces every serve metric into the registry (see
/// [`metrics::register_metrics`]).
pub fn register_metrics() {
    metrics::register_metrics();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            shards: 2,
            producers: 2,
            requests: 10_000,
            queue_capacity: 256,
            seed: 0x5EED,
            posit_permille: 300,
            ..ServeConfig::default()
        }
    }

    /// Every request is served exactly once and every response is
    /// bit-identical to the scalar two-tier function — the stack's
    /// correctness contract survives sharding, batching and SIMD.
    #[test]
    fn closed_loop_serves_everything_bit_identically() {
        let cfg = small_cfg();
        let report = serve_closed_loop(&cfg).expect("healthy run");
        assert_eq!(report.completions.len() as u64, cfg.requests);
        assert!(report.sheds.is_empty(), "no sheds without deadlines or chaos");
        assert!(report.balanced());
        assert!(report.elapsed_ns > 0);
        assert_eq!(report.panics, 0);
        assert_eq!(report.restarts, 0);
        assert!(report.failed_shards.is_empty());
        assert_eq!(workload::count_mismatches(&report.completions), 0);
        assert!(
            report.completions.iter().any(|c| workload::is_posit(c.func)),
            "posit share of the workload was served"
        );
        // Tags are unique: each request completed exactly once.
        let mut tags: Vec<u64> = report.completions.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len() as u64, cfg.requests);
    }

    /// The served output set is a function of the seed alone — shard
    /// count, producer interleaving and queue capacity must not change
    /// what is computed, only when.
    #[test]
    fn serve_results_independent_of_sharding() {
        fn result_set(shards: usize, queue_capacity: usize) -> Vec<(u64, u32, u32)> {
            let report = serve_closed_loop(&ServeConfig {
                shards,
                queue_capacity,
                requests: 4_000,
                ..small_cfg()
            })
            .expect("healthy run");
            let mut v: Vec<(u64, u32, u32)> =
                report.completions.iter().map(|c| (c.tag, c.x_bits, c.y_bits)).collect();
            v.sort_unstable();
            v
        }
        let a = result_set(1, 64);
        let b = result_set(4, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_observe_the_run_when_enabled() {
        register_metrics();
        let before = metrics::total_requests();
        let cfg = small_cfg();
        let report = serve_closed_loop(&cfg).expect("healthy run");
        assert_eq!(report.completions.len() as u64, cfg.requests);
        let after = metrics::total_requests();
        if rlibm_obs::enabled() {
            assert_eq!(after - before, cfg.requests);
        } else {
            assert_eq!(after, 0);
        }
    }

    #[test]
    fn config_clamps_are_safe() {
        let report = serve_closed_loop(&ServeConfig {
            shards: 0,
            producers: 0,
            requests: 100,
            queue_capacity: 0,
            seed: 1,
            posit_permille: 1000,
            ..ServeConfig::default()
        })
        .expect("healthy run");
        assert_eq!(report.shards, 1);
        assert_eq!(report.producers, 1);
        assert_eq!(report.completions.len(), 100);
        assert!(report.completions.iter().all(|c| workload::is_posit(c.func)));
    }

    /// Tag-space overflow is a typed config error, not a silent
    /// collision: 2^40 requests on one producer would wrap the
    /// sequence bits.
    #[test]
    fn config_validation_rejects_tag_overflow() {
        let cfg = ServeConfig { producers: 1, requests: u64::MAX / 2, ..ServeConfig::default() };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TagSpaceOverflow { per_producer: u64::MAX / 2 + 1 })
        );
        assert!(matches!(
            serve_closed_loop(&cfg),
            Err(ServeError::Config(ConfigError::TagSpaceOverflow { .. }))
        ));
        // The committed bench config (and anything remotely plausible)
        // is fine.
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    /// A chaos plan on a build without the `fault` feature is rejected
    /// loudly instead of silently not injecting.
    #[cfg(not(feature = "fault"))]
    #[test]
    fn chaos_config_requires_fault_feature() {
        let cfg = ServeConfig { chaos: Some(ChaosConfig::default()), ..small_cfg() };
        assert_eq!(cfg.validate(), Err(ConfigError::ChaosRequiresFaultFeature));
    }

    /// An aggressive deadline sheds explicitly — and the accounting
    /// still balances: every request is a completion or a shed record.
    #[test]
    fn deadline_sheds_are_explicit_and_balanced() {
        let report = serve_closed_loop(&ServeConfig {
            deadline_ns: 1, // everything is past-deadline by dequeue time
            requests: 20_000,
            ..small_cfg()
        })
        .expect("healthy run");
        assert!(report.balanced(), "deadline shedding must not lose requests");
        assert!(
            report.shed_count(ShedReason::Deadline) > 0,
            "a 1ns deadline must shed at dequeue"
        );
        assert_eq!(workload::count_mismatches(&report.completions), 0);
        // Exactly-once across BOTH outcome kinds.
        let mut tags: Vec<u64> = report
            .completions
            .iter()
            .map(|c| c.tag)
            .chain(report.sheds.iter().map(|s| s.tag))
            .collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len() as u64, report.submitted);
    }

    /// A mid-run drain stops admission, sheds the unsubmitted remainder
    /// explicitly, and still quiesces with balanced accounting.
    #[test]
    fn mid_run_drain_is_graceful_and_accounted() {
        let report = serve_closed_loop(&ServeConfig {
            requests: 2_000_000,
            drain_after_ns: 2_000_000, // 2ms into a much longer run
            ..small_cfg()
        })
        .expect("healthy run");
        assert!(report.balanced());
        assert!(
            report.shed_count(ShedReason::AdmissionClosed) > 0,
            "the drain monitor must have cut admission mid-run"
        );
        assert!(!report.completions.is_empty(), "work admitted before the drain is served");
        assert_eq!(workload::count_mismatches(&report.completions), 0);
        assert_eq!(report.quiesce.len(), report.shards);
    }

    /// The bounded-backoff push surfaces a typed overflow outcome
    /// instead of spinning forever: with no consumer, a full ring and
    /// an exhausted budget hand the request back.
    #[test]
    fn push_backoff_returns_request_when_budget_exhausts() {
        let ctrl = ServiceControl::new();
        let q: MpmcQueue<Request> = MpmcQueue::with_capacity(2);
        for j in 0..2 {
            let r = Request::new(0, 0, make_tag(0, j), 0, NO_DEADLINE);
            assert!(push_with_backoff(&q, r, 4, &ctrl).is_ok());
        }
        let r = Request::new(0, 7, make_tag(0, 2), 0, NO_DEADLINE);
        let back = push_with_backoff(&q, r, 4, &ctrl).expect_err("ring is full");
        assert_eq!(back.tag, make_tag(0, 2));
        assert_eq!(back.x_bits, 7);
        // Closing admission short-circuits the wait.
        ctrl.close_admission();
        let r = Request::new(0, 8, make_tag(0, 3), 0, NO_DEADLINE);
        assert!(push_with_backoff(&q, r, u32::MAX, &ctrl).is_err());
    }

    /// Chaos-injected shard panics cannot shrink the completion log
    /// unnoticed: the supervisor salvages in-flight work, restarts the
    /// shard, and the run still accounts for every request. This is the
    /// regression test for the old `if let Ok(log) = h.join()` silent
    /// loss.
    #[cfg(feature = "fault")]
    #[test]
    fn panicking_shard_cannot_shrink_completions_unnoticed() {
        suppress_chaos_panic_output();
        let cfg = ServeConfig {
            requests: 30_000,
            restart_backoff_ns: 1_000,
            max_restarts: u32::MAX,
            chaos: Some(ChaosConfig {
                seed: 0xC405,
                panic_per_million: 50_000, // 5% of flushes unwind
                ..ChaosConfig::default()
            }),
            ..small_cfg()
        };
        let report = serve_closed_loop(&cfg).expect("supervised run");
        assert!(report.panics > 0, "the chaos plan must actually inject panics");
        assert_eq!(report.panics, report.chaos.panics);
        assert_eq!(report.restarts, report.panics, "every panic restarts within budget");
        assert!(report.balanced(), "panics must not lose requests");
        assert_eq!(workload::count_mismatches(&report.completions), 0);
        let mut tags: Vec<u64> = report
            .completions
            .iter()
            .map(|c| c.tag)
            .chain(report.sheds.iter().map(|s| s.tag))
            .collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len() as u64, cfg.requests, "exactly-once across panics");
    }

    /// A shard that exhausts its restart budget gives up accountably:
    /// the run terminates (this test completing is the no-hang proof),
    /// the failure is itemized, and the backlog becomes explicit
    /// Poisoned sheds rather than vanishing.
    #[cfg(feature = "fault")]
    #[test]
    fn restart_budget_exhaustion_degrades_without_losing_requests() {
        suppress_chaos_panic_output();
        let report = serve_closed_loop(&ServeConfig {
            requests: 20_000,
            restart_backoff_ns: 1_000,
            max_restarts: 1,
            chaos: Some(ChaosConfig {
                seed: 0xDEAD,
                panic_per_million: 1_000_000, // every flush panics
                ..ChaosConfig::default()
            }),
            ..small_cfg()
        })
        .expect("degraded but accounted run");
        assert!(!report.failed_shards.is_empty(), "shards must exhaust the 1-restart budget");
        assert!(report.balanced(), "given-up shards must shed, not lose");
        assert!(report.shed_count(ShedReason::Poisoned) > 0);
        assert_eq!(workload::count_mismatches(&report.completions), 0);
    }

    /// Every injected ring corruption is detected by the per-request
    /// checksum and shed explicitly — zero corrupted arguments are ever
    /// served.
    #[cfg(feature = "fault")]
    #[test]
    fn corruption_is_always_detected_and_shed() {
        suppress_chaos_panic_output();
        let report = serve_closed_loop(&ServeConfig {
            requests: 30_000,
            chaos: Some(ChaosConfig {
                seed: 0xBAD5_107,
                corrupt_per_million: 30_000, // 3% of dequeues corrupted
                ..ChaosConfig::default()
            }),
            ..small_cfg()
        })
        .expect("supervised run");
        assert!(report.chaos.corruptions > 0, "the chaos plan must actually corrupt");
        assert_eq!(
            report.shed_count(ShedReason::Corrupted),
            report.chaos.corruptions,
            "every corruption is detected, no more and no fewer"
        );
        assert!(report.balanced());
        assert_eq!(workload::count_mismatches(&report.completions), 0);
    }

    /// Replaces the default panic hook with one that stays quiet for
    /// injected chaos panics (they are expected by the supervisor) but
    /// still reports everything else.
    #[cfg(feature = "fault")]
    fn suppress_chaos_panic_output() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.starts_with("chaos:"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }
}
