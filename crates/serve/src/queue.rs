//! Bounded lock-free MPMC ring queue (Vyukov's algorithm).
//!
//! One queue per shard carries requests from any number of producers to
//! the shard's worker. The design goals, in order: no allocation after
//! construction (one boxed slot array), no locks anywhere on the
//! request path, and bounded memory so a slow shard exerts backpressure
//! (a full queue makes [`MpmcQueue::push`] fail and the producer spins
//! or yields) instead of growing without limit under overload.
//!
//! Each slot carries a sequence number that encodes its state relative
//! to the head/tail tickets: `seq == pos` means free for the producer
//! holding ticket `pos`, `seq == pos + 1` means occupied for the
//! consumer holding ticket `pos`, anything less means the ring is
//! full/empty from that side. The sequence store is the release edge
//! that publishes the payload write, so no other synchronization is
//! needed.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};

/// Pads the two ticket counters to separate cache lines so producers
/// and consumers don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer queue. Capacity is fixed at
/// construction (rounded up to a power of two); `push` on a full queue
/// returns the value back instead of blocking or allocating.
pub struct MpmcQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: the slot protocol hands each value from exactly one producer
// to exactly one consumer (tickets are claimed by CAS; the seq store
// with Release ordering publishes the payload), so sharing the queue
// across threads is sound whenever T itself can move between threads.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// A queue holding at least `capacity` elements (rounded up to the
    /// next power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> MpmcQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcQueue {
            slots,
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Capacity in elements (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// A queue whose tickets start at `base` instead of 0, so tests can
    /// exercise the wrapping ticket arithmetic near `usize::MAX`
    /// without pushing 2^64 elements first.
    #[cfg(test)]
    fn with_capacity_at_base(capacity: usize, base: usize) -> MpmcQueue<T> {
        let q = MpmcQueue::with_capacity(capacity);
        // Free-state invariant: the slot that ticket `base + k` maps to
        // must carry seq `base + k`.
        for k in 0..q.slots.len() {
            let pos = base.wrapping_add(k);
            q.slots[pos & q.mask].seq.store(pos, Ordering::Relaxed);
        }
        q.enqueue_pos.0.store(base, Ordering::Relaxed);
        q.dequeue_pos.0.store(base, Ordering::Relaxed);
        q
    }

    /// Attempts to enqueue; a full ring hands the value back so the
    /// caller owns the backpressure policy (spin, yield, drop).
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `pos`, so this
                        // thread is the unique writer of this slot until
                        // the seq store below publishes it.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return Err(value); // ring full
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; `None` means the ring was observed empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `pos`; the
                        // Acquire load of seq synchronized with the
                        // producer's Release store, so the payload is
                        // fully written and this thread is its unique
                        // reader.
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None; // ring empty
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate occupancy (exact when quiescent) — the queue-depth
    /// metric samples this.
    pub fn len(&self) -> usize {
        let head = self.enqueue_pos.0.load(Ordering::Relaxed);
        let tail = self.dequeue_pos.0.load(Ordering::Relaxed);
        head.wrapping_sub(tail).min(self.slots.len())
    }

    /// True when [`MpmcQueue::len`] observes zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Drain so non-trivial payloads drop exactly once.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::MpmcQueue;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = MpmcQueue::with_capacity(8);
        assert_eq!(q.capacity(), 8);
        for i in 0..8u32 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full ring hands the value back");
        assert_eq!(q.len(), 8);
        for i in 0..8u32 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(MpmcQueue::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(MpmcQueue::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(MpmcQueue::<u8>::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = MpmcQueue::with_capacity(4);
        for round in 0..100u64 {
            assert!(q.push(round).is_ok());
            assert_eq!(q.pop(), Some(round));
        }
    }

    /// Every pushed value is popped exactly once across concurrent
    /// producers and consumers (checksum equality).
    #[test]
    fn concurrent_transfer_is_lossless() {
        const PER_PRODUCER: u64 = 20_000;
        const PRODUCERS: u64 = 3;
        const CONSUMERS: usize = 3;
        let q = MpmcQueue::with_capacity(64);
        let popped_sum = AtomicU64::new(0);
        let popped_n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i + 1;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let total = PRODUCERS * PER_PRODUCER;
            for _ in 0..CONSUMERS {
                let q = &q;
                let popped_sum = &popped_sum;
                let popped_n = &popped_n;
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            if popped_n.fetch_add(1, Ordering::Relaxed) + 1 == total {
                                break;
                            }
                        }
                        None => {
                            if popped_n.load(Ordering::Relaxed) >= total {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(popped_n.load(Ordering::Relaxed), n);
        assert_eq!(popped_sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    /// The degenerate minimum ring (requested capacity 1 rounds up to
    /// 2) still honours the push-returns-on-full contract instead of
    /// losing or duplicating: the producer-side backpressure path in
    /// the serve layer leans on exactly this behaviour.
    #[test]
    fn minimum_capacity_ring_returns_on_full() {
        let q = MpmcQueue::with_capacity(1);
        assert_eq!(q.capacity(), 2);
        assert!(q.push(10u32).is_ok());
        assert!(q.push(11).is_ok());
        assert_eq!(q.push(12), Err(12));
        assert_eq!(q.push(12), Err(12), "rejection is repeatable, not one-shot");
        assert_eq!(q.pop(), Some(10));
        assert!(q.push(12).is_ok(), "one pop frees exactly one slot");
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
        assert_eq!(q.pop(), None);
    }

    /// Ticket arithmetic is wrapping: a ring whose tickets start just
    /// below `usize::MAX` pushes and pops across the wrap boundary
    /// without losing FIFO order or slot state.
    #[test]
    fn tickets_wrap_across_usize_max() {
        let q = MpmcQueue::with_capacity_at_base(4, usize::MAX - 2);
        // Fill across the boundary: tickets MAX-2, MAX-1, MAX, 0.
        for i in 0..4u64 {
            assert!(q.push(i).is_ok(), "push {i} across the wrap");
        }
        assert_eq!(q.push(99), Err(99), "full detection survives the wrap");
        for i in 0..4u64 {
            assert_eq!(q.pop(), Some(i), "FIFO order survives the wrap");
        }
        assert_eq!(q.pop(), None);
        // Several more laps to march every slot's seq through the wrap.
        for round in 0..16u64 {
            assert!(q.push(round).is_ok());
            assert!(q.push(round + 100).is_ok());
            assert_eq!(q.pop(), Some(round));
            assert_eq!(q.pop(), Some(round + 100));
        }
        assert!(q.is_empty());
    }

    /// High-contention exactly-once: more threads than capacity slots,
    /// a tiny ring, and a per-value seen-bitmap — any duplicate or lost
    /// pop trips the exact check (the checksum test above could in
    /// principle miss compensating errors).
    #[test]
    fn contended_tiny_ring_delivers_exactly_once() {
        const PER_PRODUCER: usize = 4_000;
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        const TOTAL: usize = PRODUCERS * PER_PRODUCER;
        let q = MpmcQueue::with_capacity(4); // far fewer slots than threads
        let seen: Vec<AtomicU64> = (0..TOTAL.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let popped_n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = (p * PER_PRODUCER + i) as u64;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    // Yield, not spin: with more threads
                                    // than cores a spin wait starves the
                                    // consumers this test depends on.
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let seen = &seen;
                let popped_n = &popped_n;
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            let prev = seen[(v / 64) as usize]
                                .fetch_or(1u64 << (v % 64), Ordering::Relaxed);
                            assert_eq!(prev & (1u64 << (v % 64)), 0, "value {v} popped twice");
                            if popped_n.fetch_add(1, Ordering::Relaxed) + 1 == TOTAL as u64 {
                                break;
                            }
                        }
                        None => {
                            if popped_n.load(Ordering::Relaxed) >= TOTAL as u64 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(popped_n.load(Ordering::Relaxed), TOTAL as u64);
        let full_words = TOTAL / 64;
        assert!(seen[..full_words].iter().all(|w| w.load(Ordering::Relaxed) == u64::MAX));
        if !TOTAL.is_multiple_of(64) {
            assert_eq!(
                seen[full_words].load(Ordering::Relaxed),
                (1u64 << (TOTAL % 64)) - 1
            );
        }
    }
}
