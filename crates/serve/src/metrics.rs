//! Per-shard serving metrics (rlibm-obs registry; no-ops without the
//! `telemetry` feature).
//!
//! Metric statics need `&'static str` names, so shard slots are a fixed
//! bank of [`MAX_SHARDS`] entries; a deployment with more worker threads
//! than slots folds shard `i` onto slot `i % MAX_SHARDS` (the driver
//! also clamps the shard count, so in practice the mapping is 1:1).
//!
//! Per slot:
//! * `serve.shard<i>.requests` — requests dequeued by the worker;
//! * `serve.shard<i>.batches` / `serve.shard<i>.batch_lanes` — slice
//!   flushes and the lanes they carried; fill ratio is
//!   `batch_lanes / (64 * batches)`;
//! * `serve.shard<i>.queue_depth` — log2 histogram of ring occupancy
//!   sampled at every flush;
//! * `serve.shard<i>.latency_ns` — log2 histogram of per-request
//!   enqueue-to-completion latency.

use rlibm_obs::{Counter, Histogram};

/// Number of metric slots (and the driver's shard-count cap).
pub const MAX_SHARDS: usize = 8;

static REQUESTS: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.requests"),
    Counter::new("serve.shard1.requests"),
    Counter::new("serve.shard2.requests"),
    Counter::new("serve.shard3.requests"),
    Counter::new("serve.shard4.requests"),
    Counter::new("serve.shard5.requests"),
    Counter::new("serve.shard6.requests"),
    Counter::new("serve.shard7.requests"),
];

static BATCHES: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.batches"),
    Counter::new("serve.shard1.batches"),
    Counter::new("serve.shard2.batches"),
    Counter::new("serve.shard3.batches"),
    Counter::new("serve.shard4.batches"),
    Counter::new("serve.shard5.batches"),
    Counter::new("serve.shard6.batches"),
    Counter::new("serve.shard7.batches"),
];

static BATCH_LANES: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.batch_lanes"),
    Counter::new("serve.shard1.batch_lanes"),
    Counter::new("serve.shard2.batch_lanes"),
    Counter::new("serve.shard3.batch_lanes"),
    Counter::new("serve.shard4.batch_lanes"),
    Counter::new("serve.shard5.batch_lanes"),
    Counter::new("serve.shard6.batch_lanes"),
    Counter::new("serve.shard7.batch_lanes"),
];

static QUEUE_DEPTH: [Histogram; MAX_SHARDS] = [
    Histogram::new("serve.shard0.queue_depth"),
    Histogram::new("serve.shard1.queue_depth"),
    Histogram::new("serve.shard2.queue_depth"),
    Histogram::new("serve.shard3.queue_depth"),
    Histogram::new("serve.shard4.queue_depth"),
    Histogram::new("serve.shard5.queue_depth"),
    Histogram::new("serve.shard6.queue_depth"),
    Histogram::new("serve.shard7.queue_depth"),
];

static LATENCY_NS: [Histogram; MAX_SHARDS] = [
    Histogram::new("serve.shard0.latency_ns"),
    Histogram::new("serve.shard1.latency_ns"),
    Histogram::new("serve.shard2.latency_ns"),
    Histogram::new("serve.shard3.latency_ns"),
    Histogram::new("serve.shard4.latency_ns"),
    Histogram::new("serve.shard5.latency_ns"),
    Histogram::new("serve.shard6.latency_ns"),
    Histogram::new("serve.shard7.latency_ns"),
];

#[inline]
fn slot(shard: usize) -> usize {
    shard % MAX_SHARDS
}

pub(crate) fn requests(shard: usize) -> &'static Counter {
    &REQUESTS[slot(shard)]
}

pub(crate) fn batches(shard: usize) -> &'static Counter {
    &BATCHES[slot(shard)]
}

pub(crate) fn batch_lanes(shard: usize) -> &'static Counter {
    &BATCH_LANES[slot(shard)]
}

pub(crate) fn queue_depth(shard: usize) -> &'static Histogram {
    &QUEUE_DEPTH[slot(shard)]
}

pub(crate) fn latency_ns(shard: usize) -> &'static Histogram {
    &LATENCY_NS[slot(shard)]
}

/// Total requests served across every shard slot (0 without telemetry).
pub fn total_requests() -> u64 {
    REQUESTS.iter().map(|c| c.get()).sum()
}

/// Forces every per-shard metric into the snapshot registry at zero, so
/// TELEM readers see idle shards as zeros rather than missing names.
pub fn register_metrics() {
    for i in 0..MAX_SHARDS {
        requests(i).register();
        batches(i).register();
        batch_lanes(i).register();
        queue_depth(i).register();
        latency_ns(i).register();
    }
}
