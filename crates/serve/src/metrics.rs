//! Per-shard serving metrics (rlibm-obs registry; no-ops without the
//! `telemetry` feature).
//!
//! Metric statics need `&'static str` names, so shard slots are a fixed
//! bank of [`MAX_SHARDS`] entries; a deployment with more worker threads
//! than slots folds shard `i` onto slot `i % MAX_SHARDS` (the driver
//! also clamps the shard count, so in practice the mapping is 1:1).
//!
//! Per slot:
//! * `serve.shard<i>.requests` — requests dequeued by the worker;
//! * `serve.shard<i>.batches` / `serve.shard<i>.batch_lanes` — slice
//!   flushes and the lanes they carried; fill ratio is
//!   `batch_lanes / (64 * batches)`;
//! * `serve.shard<i>.queue_depth` — log2 histogram of ring occupancy
//!   sampled at every flush;
//! * `serve.shard<i>.latency_ns` — log2 histogram of per-request
//!   enqueue-to-completion latency;
//! * `serve.shard<i>.panics` / `serve.shard<i>.restarts` — worker
//!   panics caught by the supervisor and the restarts it performed
//!   (panics == restarts unless a shard exhausted its budget).
//!
//! Note: `serve.shard<i>.requests` counts *dequeues*; a batch requeued
//! after a salvaged panic is dequeued again, so under chaos the counter
//! can exceed the number of distinct requests (the report's tag
//! accounting, not this counter, is the exactly-once evidence).
//!
//! Service-wide (not per shard):
//! * `serve.shed.{deadline,backpressure,admission,corrupted,poisoned}`
//!   — explicit shed records by reason;
//! * `serve.shed.overdue_ns` — histogram of how far past its deadline
//!   each deadline-shed request was;
//! * `serve.push.attempts` — histogram of producer push attempts for
//!   *contended* pushes (first-try successes are not recorded, keeping
//!   two atomics off the uncontended hot path; the distribution is the
//!   backpressure / contention signal);
//! * `serve.chaos.{panics,delays,corruptions}` — injections performed
//!   by the chaos layer (`fault` feature; exact counts also travel in
//!   `ServeReport::chaos`);
//! * `serve.trace.sampled` and the
//!   `serve.trace.{queue_wait,batch_wait,kernel,fallback}_ns`
//!   histograms — per-stage latency attribution of trace-sampled
//!   requests (queue wait and batch residency per sampled completion,
//!   kernel and rescalar-fallback time per timed flush); the exact
//!   per-function sums travel in `ServeReport::attribution`.

use crate::shard::ShedReason;
use rlibm_obs::{Counter, Histogram};

/// Number of metric slots (and the driver's shard-count cap).
pub const MAX_SHARDS: usize = 8;

static REQUESTS: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.requests"),
    Counter::new("serve.shard1.requests"),
    Counter::new("serve.shard2.requests"),
    Counter::new("serve.shard3.requests"),
    Counter::new("serve.shard4.requests"),
    Counter::new("serve.shard5.requests"),
    Counter::new("serve.shard6.requests"),
    Counter::new("serve.shard7.requests"),
];

static BATCHES: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.batches"),
    Counter::new("serve.shard1.batches"),
    Counter::new("serve.shard2.batches"),
    Counter::new("serve.shard3.batches"),
    Counter::new("serve.shard4.batches"),
    Counter::new("serve.shard5.batches"),
    Counter::new("serve.shard6.batches"),
    Counter::new("serve.shard7.batches"),
];

static BATCH_LANES: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.batch_lanes"),
    Counter::new("serve.shard1.batch_lanes"),
    Counter::new("serve.shard2.batch_lanes"),
    Counter::new("serve.shard3.batch_lanes"),
    Counter::new("serve.shard4.batch_lanes"),
    Counter::new("serve.shard5.batch_lanes"),
    Counter::new("serve.shard6.batch_lanes"),
    Counter::new("serve.shard7.batch_lanes"),
];

static QUEUE_DEPTH: [Histogram; MAX_SHARDS] = [
    Histogram::new("serve.shard0.queue_depth"),
    Histogram::new("serve.shard1.queue_depth"),
    Histogram::new("serve.shard2.queue_depth"),
    Histogram::new("serve.shard3.queue_depth"),
    Histogram::new("serve.shard4.queue_depth"),
    Histogram::new("serve.shard5.queue_depth"),
    Histogram::new("serve.shard6.queue_depth"),
    Histogram::new("serve.shard7.queue_depth"),
];

static LATENCY_NS: [Histogram; MAX_SHARDS] = [
    Histogram::new("serve.shard0.latency_ns"),
    Histogram::new("serve.shard1.latency_ns"),
    Histogram::new("serve.shard2.latency_ns"),
    Histogram::new("serve.shard3.latency_ns"),
    Histogram::new("serve.shard4.latency_ns"),
    Histogram::new("serve.shard5.latency_ns"),
    Histogram::new("serve.shard6.latency_ns"),
    Histogram::new("serve.shard7.latency_ns"),
];

static PANICS: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.panics"),
    Counter::new("serve.shard1.panics"),
    Counter::new("serve.shard2.panics"),
    Counter::new("serve.shard3.panics"),
    Counter::new("serve.shard4.panics"),
    Counter::new("serve.shard5.panics"),
    Counter::new("serve.shard6.panics"),
    Counter::new("serve.shard7.panics"),
];

static RESTARTS: [Counter; MAX_SHARDS] = [
    Counter::new("serve.shard0.restarts"),
    Counter::new("serve.shard1.restarts"),
    Counter::new("serve.shard2.restarts"),
    Counter::new("serve.shard3.restarts"),
    Counter::new("serve.shard4.restarts"),
    Counter::new("serve.shard5.restarts"),
    Counter::new("serve.shard6.restarts"),
    Counter::new("serve.shard7.restarts"),
];

static SHED_DEADLINE: Counter = Counter::new("serve.shed.deadline");
static SHED_BACKPRESSURE: Counter = Counter::new("serve.shed.backpressure");
static SHED_ADMISSION: Counter = Counter::new("serve.shed.admission");
static SHED_CORRUPTED: Counter = Counter::new("serve.shed.corrupted");
static SHED_POISONED: Counter = Counter::new("serve.shed.poisoned");
static SHED_OVERDUE_NS: Histogram = Histogram::new("serve.shed.overdue_ns");
static PUSH_ATTEMPTS: Histogram = Histogram::new("serve.push.attempts");

static CHAOS_PANICS: Counter = Counter::new("serve.chaos.panics");
static CHAOS_DELAYS: Counter = Counter::new("serve.chaos.delays");
static CHAOS_CORRUPTIONS: Counter = Counter::new("serve.chaos.corruptions");

// Trace-sampled latency attribution (see `flight` and DESIGN.md
// "Tracing and flight recorder"). Per-request stages record one sample
// per *sampled* completion; the kernel stages record one sample per
// timed flush. The exact per-function sums travel in
// `ServeReport::attribution`; these histograms carry the distributions.
static TRACE_SAMPLED: Counter = Counter::new("serve.trace.sampled");
static TRACE_QUEUE_WAIT_NS: Histogram = Histogram::new("serve.trace.queue_wait_ns");
static TRACE_BATCH_WAIT_NS: Histogram = Histogram::new("serve.trace.batch_wait_ns");
static TRACE_KERNEL_NS: Histogram = Histogram::new("serve.trace.kernel_ns");
static TRACE_FALLBACK_NS: Histogram = Histogram::new("serve.trace.fallback_ns");

#[inline]
fn slot(shard: usize) -> usize {
    shard % MAX_SHARDS
}

pub(crate) fn requests(shard: usize) -> &'static Counter {
    &REQUESTS[slot(shard)]
}

pub(crate) fn batches(shard: usize) -> &'static Counter {
    &BATCHES[slot(shard)]
}

pub(crate) fn batch_lanes(shard: usize) -> &'static Counter {
    &BATCH_LANES[slot(shard)]
}

pub(crate) fn queue_depth(shard: usize) -> &'static Histogram {
    &QUEUE_DEPTH[slot(shard)]
}

pub(crate) fn latency_ns(shard: usize) -> &'static Histogram {
    &LATENCY_NS[slot(shard)]
}

pub(crate) fn panics(shard: usize) -> &'static Counter {
    &PANICS[slot(shard)]
}

pub(crate) fn restarts(shard: usize) -> &'static Counter {
    &RESTARTS[slot(shard)]
}

pub(crate) fn shed_counter(reason: ShedReason) -> &'static Counter {
    match reason {
        ShedReason::Deadline => &SHED_DEADLINE,
        ShedReason::Backpressure => &SHED_BACKPRESSURE,
        ShedReason::AdmissionClosed => &SHED_ADMISSION,
        ShedReason::Corrupted => &SHED_CORRUPTED,
        ShedReason::Poisoned => &SHED_POISONED,
    }
}

pub(crate) fn shed_overdue_ns() -> &'static Histogram {
    &SHED_OVERDUE_NS
}

pub(crate) fn push_attempts() -> &'static Histogram {
    &PUSH_ATTEMPTS
}

#[cfg(feature = "fault")]
pub(crate) fn chaos_panics() -> &'static Counter {
    &CHAOS_PANICS
}

#[cfg(feature = "fault")]
pub(crate) fn chaos_delays() -> &'static Counter {
    &CHAOS_DELAYS
}

#[cfg(feature = "fault")]
pub(crate) fn chaos_corruptions() -> &'static Counter {
    &CHAOS_CORRUPTIONS
}

pub(crate) fn trace_sampled() -> &'static Counter {
    &TRACE_SAMPLED
}

pub(crate) fn trace_queue_wait_ns() -> &'static Histogram {
    &TRACE_QUEUE_WAIT_NS
}

pub(crate) fn trace_batch_wait_ns() -> &'static Histogram {
    &TRACE_BATCH_WAIT_NS
}

pub(crate) fn trace_kernel_ns() -> &'static Histogram {
    &TRACE_KERNEL_NS
}

pub(crate) fn trace_fallback_ns() -> &'static Histogram {
    &TRACE_FALLBACK_NS
}

/// Total requests served across every shard slot (0 without telemetry).
pub fn total_requests() -> u64 {
    REQUESTS.iter().map(|c| c.get()).sum()
}

/// Total caught panics across every shard slot (0 without telemetry).
pub fn total_panics() -> u64 {
    PANICS.iter().map(|c| c.get()).sum()
}

/// Total supervisor restarts across every shard slot (0 without
/// telemetry).
pub fn total_restarts() -> u64 {
    RESTARTS.iter().map(|c| c.get()).sum()
}

/// Total explicit sheds across every reason (0 without telemetry).
pub fn total_sheds() -> u64 {
    SHED_DEADLINE.get()
        + SHED_BACKPRESSURE.get()
        + SHED_ADMISSION.get()
        + SHED_CORRUPTED.get()
        + SHED_POISONED.get()
}

/// Forces every per-shard metric into the snapshot registry at zero, so
/// TELEM readers see idle shards as zeros rather than missing names.
pub fn register_metrics() {
    for i in 0..MAX_SHARDS {
        requests(i).register();
        batches(i).register();
        batch_lanes(i).register();
        queue_depth(i).register();
        latency_ns(i).register();
        panics(i).register();
        restarts(i).register();
    }
    SHED_DEADLINE.register();
    SHED_BACKPRESSURE.register();
    SHED_ADMISSION.register();
    SHED_CORRUPTED.register();
    SHED_POISONED.register();
    SHED_OVERDUE_NS.register();
    PUSH_ATTEMPTS.register();
    CHAOS_PANICS.register();
    CHAOS_DELAYS.register();
    CHAOS_CORRUPTIONS.register();
    TRACE_SAMPLED.register();
    TRACE_QUEUE_WAIT_NS.register();
    TRACE_BATCH_WAIT_NS.register();
    TRACE_KERNEL_NS.register();
    TRACE_FALLBACK_NS.register();
}
