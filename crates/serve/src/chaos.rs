//! Serve-layer chaos injection (feature `fault`).
//!
//! PR 3's fault feature corrupts the math-kernel fast path and proves
//! the round-safe certification absorbs it; this module extends the
//! same adversarial method one layer up, into the service itself. With
//! `--features fault`, a per-shard seeded [`rlibm_fp::rng::XorShift64`]
//! stream drives three injection modes:
//!
//! 1. **Shard panics** — [`fire_panic_if_armed`] unwinds the worker at
//!    the top of a flush, before any completion is recorded, so the
//!    whole batch is in flight when the supervisor catches the panic.
//!    Exercises salvage, requeue and restart backoff.
//! 2. **Delayed flushes** — a busy-wait of `delay_ns` before the slice
//!    evaluation, backing the ring up so deadline shedding and producer
//!    backpressure paths actually run.
//! 3. **Request corruption** — one bit of a dequeued request's `x_bits`
//!    flips, modelling a corrupted ring slot. The per-request checksum
//!    ([`crate::Request::verify`]) covers `x_bits` through a bijective
//!    mix, so a single-bit flip is always detected and the request is
//!    shed as [`crate::ShedReason::Corrupted`] — never served with a
//!    wrong argument, never silently dropped.
//!
//! A fourth knob, `kernel_fault_seed`, arms the *kernel-level* fault
//! hooks (`rlibm_math::fault`) on each worker thread, composing both
//! failure layers: corrupted fast-path doubles inside a supervised,
//! chaos-injected service must still produce bit-identical completions.
//!
//! Without the feature every hook is a no-op and a populated
//! `ServeConfig::chaos` is rejected at validation time, so a production
//! build cannot silently run with injection compiled out.

/// Chaos injection plan, applied per shard with a shard-salted seed.
/// Rates are per million draws; a zeroed config injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosConfig {
    /// Base seed; shard `i` derives its own deterministic stream.
    pub seed: u64,
    /// Per-flush probability (out of 1e6) of panicking the shard at the
    /// top of the flush, before any completion is recorded.
    pub panic_per_million: u32,
    /// Per-flush probability (out of 1e6) of delaying the flush.
    pub delay_per_million: u32,
    /// Busy-wait length for a delayed flush, in nanoseconds.
    pub delay_ns: u64,
    /// Per-dequeue probability (out of 1e6) of flipping one bit of the
    /// request's `x_bits` (detected by the per-request checksum).
    pub corrupt_per_million: u32,
    /// When nonzero, arms `rlibm_math::fault` on each worker thread
    /// with `kernel_fault_seed ^ shard`, corrupting the math-kernel
    /// fast path underneath the service.
    pub kernel_fault_seed: u64,
}

/// Exact injection counts for one run (summed over shards in
/// [`crate::ServeReport::chaos`]). Tracked in plain worker-local
/// integers, so the counts are exact even without telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Injected shard panics.
    pub panics: u64,
    /// Injected flush delays.
    pub delays: u64,
    /// Injected request corruptions.
    pub corruptions: u64,
}

impl ChaosStats {
    /// Total injections across all serve-layer modes.
    pub fn total(&self) -> u64 {
        self.panics + self.delays + self.corruptions
    }

    pub(crate) fn accumulate(&mut self, other: ChaosStats) {
        self.panics += other.panics;
        self.delays += other.delays;
        self.corruptions += other.corruptions;
    }
}

#[cfg(feature = "fault")]
mod imp {
    use super::{ChaosConfig, ChaosStats};
    use crate::metrics;
    use crate::shard::Request;
    use rlibm_fp::rng::XorShift64;
    use std::time::Instant;

    /// Per-shard chaos state: the seeded stream plus exact counts.
    pub struct ChaosState {
        plan: Option<(ChaosConfig, XorShift64)>,
        pub stats: ChaosStats,
        kernel_seed: u64,
    }

    impl ChaosState {
        pub fn new(cfg: Option<&ChaosConfig>, shard: usize) -> ChaosState {
            ChaosState {
                plan: cfg.map(|c| {
                    (*c, XorShift64::new(c.seed ^ (shard as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)))
                }),
                stats: ChaosStats::default(),
                kernel_seed: cfg.map_or(0, |c| {
                    if c.kernel_fault_seed == 0 {
                        0
                    } else {
                        c.kernel_fault_seed ^ shard as u64
                    }
                }),
            }
        }

        /// Arms the kernel-level fault hooks on this worker thread.
        pub fn arm_kernel(&self) {
            if self.kernel_seed != 0 {
                rlibm_math::fault::arm(self.kernel_seed);
            }
        }

        pub fn disarm_kernel(&self) {
            if self.kernel_seed != 0 {
                rlibm_math::fault::disarm();
            }
        }

        #[inline]
        fn draw(&mut self, per_million: u32) -> bool {
            match &mut self.plan {
                Some((_, rng)) if per_million > 0 => rng.next_u64() % 1_000_000 < u64::from(per_million),
                _ => false,
            }
        }

        /// One bit of `x_bits` flips; the request's checksum (computed
        /// over the original value) is left untouched, so `verify`
        /// must now fail.
        #[inline]
        pub fn maybe_corrupt(&mut self, req: &mut Request) {
            let per_million = self.plan.as_ref().map_or(0, |(c, _)| c.corrupt_per_million);
            if self.draw(per_million) {
                let bit = match &mut self.plan {
                    Some((_, rng)) => rng.next_u64() % 32,
                    None => 0,
                };
                req.x_bits ^= 1u32 << bit;
                self.stats.corruptions += 1;
                metrics::chaos_corruptions().add(1);
            }
        }

        /// Busy-waits `delay_ns` when the delay draw fires.
        #[inline]
        pub fn maybe_delay(&mut self) {
            let (per_million, delay_ns) =
                self.plan.as_ref().map_or((0, 0), |(c, _)| (c.delay_per_million, c.delay_ns));
            if self.draw(per_million) {
                self.stats.delays += 1;
                metrics::chaos_delays().add(1);
                let t0 = Instant::now();
                while (t0.elapsed().as_nanos() as u64) < delay_ns {
                    std::hint::spin_loop();
                }
            }
        }

        /// Panics the worker when the panic draw fires. The count is
        /// recorded *before* the unwind so it survives into the
        /// supervisor's salvaged state.
        #[inline]
        pub fn fire_panic_if_armed(&mut self) {
            let per_million = self.plan.as_ref().map_or(0, |(c, _)| c.panic_per_million);
            if self.draw(per_million) {
                self.stats.panics += 1;
                metrics::chaos_panics().add(1);
                // Deliberate unwind: this is the injection the
                // supervisor exists to contain.
                #[allow(clippy::panic)]
                {
                    panic!("chaos: injected shard panic");
                }
            }
        }
    }
}

#[cfg(not(feature = "fault"))]
mod imp {
    use super::{ChaosConfig, ChaosStats};
    use crate::shard::Request;

    /// No-op chaos state: the `fault` feature is off, every hook
    /// compiles away.
    pub struct ChaosState {
        pub stats: ChaosStats,
    }

    impl ChaosState {
        pub fn new(_cfg: Option<&ChaosConfig>, _shard: usize) -> ChaosState {
            ChaosState { stats: ChaosStats::default() }
        }
        #[inline(always)]
        pub fn arm_kernel(&self) {}
        #[inline(always)]
        pub fn disarm_kernel(&self) {}
        #[inline(always)]
        pub fn maybe_corrupt(&mut self, _req: &mut Request) {}
        #[inline(always)]
        pub fn maybe_delay(&mut self) {}
        #[inline(always)]
        pub fn fire_panic_if_armed(&mut self) {}
    }
}

pub(crate) use imp::ChaosState;

/// True when this build can actually inject (the `fault` feature is on).
pub const fn injection_compiled_in() -> bool {
    cfg!(feature = "fault")
}
