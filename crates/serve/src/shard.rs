//! The shard worker: drains its request ring, batches per function into
//! 64-lane slice chunks, and resolves every dequeued request as exactly
//! one of a bit-identical [`Completion`] or an explicit [`Shed`] record.
//!
//! Zero allocation per request: the per-function accumulators are fixed
//! `[_; 64]` arrays owned by the worker, the slice staging buffers are
//! stack arrays, and the completion/shed logs are `Vec`s pre-sized by
//! the driver (pushes stay within capacity in the closed loop). The only
//! heap traffic after startup is the final hand-off of those logs.
//!
//! Batching policy: a full 64-lane batch flushes immediately; any
//! partially filled batches flush as soon as the ring runs dry, so an
//! idle service converges to scalar-sized batches (low latency) and a
//! loaded one to full chunks (high throughput) without a timer.
//!
//! Failure handling on the worker path (see `supervisor` for the
//! restart side):
//!
//! * every dequeued request is **integrity-checked** against its
//!   enqueue-time checksum; a corrupted request is shed as
//!   [`ShedReason::Corrupted`] instead of being served with a wrong
//!   argument;
//! * a request past its **deadline** is shed as
//!   [`ShedReason::Deadline`] at dequeue time (once admitted to a
//!   batch, the shard commits to answering it);
//! * the worker body ([`shard_pass`]) is run under `catch_unwind` by
//!   the supervisor, with all logs and accumulators living *outside*
//!   the unwind so a panic can salvage the in-flight work.

use crate::chaos::ChaosState;
use crate::flight::{self, FlightDump, FlightTrigger, StageAttribution};
use crate::metrics;
use crate::queue::MpmcQueue;
use crate::supervisor::{ServiceControl, ShardQuiesce};
use crate::workload;
use rlibm_obs::trace::{self, TraceKind};
use rlibm_posit::Posit32;
use std::time::Instant;

/// Lanes per flush — the slice kernels' chunk width.
pub const BATCH: usize = 64;

/// Bits of the per-producer sequence number inside a [`Request::tag`];
/// the producer index occupies the bits above. 2^40 requests per
/// producer and 2^24 producers before the tag space is exhausted —
/// configs that could overflow are rejected up front
/// (`ServeConfig::validate`), never silently wrapped.
pub const TAG_SEQ_BITS: u32 = 40;

/// Builds the exactly-once tag for producer `p`'s `j`-th request.
/// Collision-free whenever `p < 2^24` and `j < 2^40` (enforced by
/// config validation).
#[inline]
pub fn make_tag(producer: usize, j: u64) -> u64 {
    ((producer as u64) << TAG_SEQ_BITS) | j
}

/// Sentinel deadline meaning "no deadline".
pub const NO_DEADLINE: u64 = u64::MAX;

/// One request: a function id, the argument bit pattern, a caller tag
/// echoed into the completion, the enqueue timestamp and deadline
/// (nanoseconds since the service epoch), and an integrity checksum
/// over all of the above, verified at dequeue.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    pub func: u8,
    pub x_bits: u32,
    pub tag: u64,
    pub t_enqueue_ns: u64,
    /// Absolute deadline in ns since the epoch; [`NO_DEADLINE`] = none.
    pub deadline_ns: u64,
    /// Enqueue-time checksum binding every field above.
    pub check: u32,
}

impl Request {
    /// A request with its checksum computed from the other fields.
    pub fn new(func: u8, x_bits: u32, tag: u64, t_enqueue_ns: u64, deadline_ns: u64) -> Request {
        Request {
            func,
            x_bits,
            tag,
            t_enqueue_ns,
            deadline_ns,
            check: checksum(func, x_bits, tag, t_enqueue_ns, deadline_ns),
        }
    }

    /// True when the checksum still matches the fields — i.e. the
    /// request survived the ring intact.
    #[inline]
    pub fn verify(&self) -> bool {
        self.check == checksum(self.func, self.x_bits, self.tag, self.t_enqueue_ns, self.deadline_ns)
    }
}

/// Per-request integrity checksum. `x_bits` enters through a bijective
/// map (odd-constant multiply, xored in last), so any single-bit change
/// to `x_bits` — the chaos harness's ring-corruption model — changes
/// the checksum with certainty, not merely with high probability. The
/// remaining fields are mixed through a single multiply (rotations keep
/// their bits from cancelling each other), detected with probability
/// ~1-2^-32 per flip: one multiply instead of a dependency chain of
/// four, because this runs twice per request on the serve hot path.
#[inline]
fn checksum(func: u8, x_bits: u32, tag: u64, t_enqueue_ns: u64, deadline_ns: u64) -> u32 {
    let h = (tag
        ^ t_enqueue_ns.rotate_left(21)
        ^ deadline_ns.rotate_left(43)
        ^ (u64::from(func) << 56))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let folded = (h ^ (h >> 32)) as u32;
    folded ^ x_bits.wrapping_mul(0x9E37_79B9)
}

/// One served response, with the measured enqueue-to-completion latency.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    pub func: u8,
    pub x_bits: u32,
    pub y_bits: u32,
    pub tag: u64,
    pub latency_ns: u64,
}

/// Why a request was shed instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Past its deadline at dequeue time.
    Deadline,
    /// The producer's bounded-backoff push budget ran out on a full
    /// ring.
    Backpressure,
    /// Admission was already closed (drain in progress) when the
    /// producer tried to submit.
    AdmissionClosed,
    /// The dequeued request failed its integrity checksum.
    Corrupted,
    /// In flight on a shard that exhausted its restart budget (or could
    /// not be requeued after a panic).
    Poisoned,
}

/// An explicitly shed request — the accounting twin of [`Completion`]:
/// every submitted request ends as exactly one of the two.
#[derive(Clone, Copy, Debug)]
pub struct Shed {
    pub func: u8,
    pub x_bits: u32,
    pub tag: u64,
    pub reason: ShedReason,
}

/// Per-function accumulator: parallel columns of a pending batch.
pub(crate) struct Batch {
    pub x_bits: [u32; BATCH],
    pub tag: [u64; BATCH],
    pub t_enq: [u64; BATCH],
    pub deadline: [u64; BATCH],
    /// Dequeue timestamp of trace-sampled lanes (0 = not sampled);
    /// feeds the batch-residency attribution at flush time.
    pub t_deq: [u64; BATCH],
    pub len: usize,
}

impl Batch {
    const fn new() -> Batch {
        Batch {
            x_bits: [0; BATCH],
            tag: [0; BATCH],
            t_enq: [0; BATCH],
            deadline: [0; BATCH],
            t_deq: [0; BATCH],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, req: &Request, t_deq_ns: u64) -> bool {
        self.x_bits[self.len] = req.x_bits;
        self.tag[self.len] = req.tag;
        self.t_enq[self.len] = req.t_enqueue_ns;
        self.deadline[self.len] = req.deadline_ns;
        self.t_deq[self.len] = t_deq_ns;
        self.len += 1;
        self.len == BATCH
    }
}

/// Scratch for the slice staging buffers (stack arrays, reused across
/// flushes).
struct Scratch {
    xs: [f32; BATCH],
    ys: [f32; BATCH],
    pxs: [Posit32; BATCH],
    pys: [Posit32; BATCH],
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            xs: [0.0; BATCH],
            ys: [0.0; BATCH],
            pxs: [Posit32::ZERO; BATCH],
            pys: [Posit32::ZERO; BATCH],
        }
    }
}

/// Everything a shard accumulates across supervised passes. Lives in
/// the supervisor's frame, *outside* `catch_unwind`, so a panicking
/// pass cannot take the completion log or the in-flight batches with
/// it.
pub(crate) struct ShardState {
    pub completions: Vec<Completion>,
    pub sheds: Vec<Shed>,
    pub batches: Vec<Batch>,
    pub chaos: ChaosState,
    pub quiesce: ShardQuiesce,
    /// Exact per-function latency attribution of trace-sampled requests.
    pub attribution: [StageAttribution; workload::NUM_FUNCS],
    /// Flight-recorder dumps captured on this shard (panic/corruption),
    /// capped at [`flight::FLIGHT_DUMPS_PER_SHARD`].
    pub flight: Vec<FlightDump>,
    /// Only the *first* corrupted request dumps the recorder — a
    /// corruption storm is summarized by its shed counter, not N dumps.
    corruption_dumped: bool,
}

impl ShardState {
    pub fn new(shard: usize, expected: usize, chaos_cfg: Option<&crate::chaos::ChaosConfig>) -> ShardState {
        ShardState {
            completions: Vec::with_capacity(expected),
            sheds: Vec::new(),
            batches: (0..workload::NUM_FUNCS).map(|_| Batch::new()).collect(),
            chaos: ChaosState::new(chaos_cfg, shard),
            quiesce: ShardQuiesce { shard, ..ShardQuiesce::default() },
            attribution: [StageAttribution::default(); workload::NUM_FUNCS],
            flight: Vec::new(),
            corruption_dumped: false,
        }
    }

    pub fn shed(&mut self, func: u8, x_bits: u32, tag: u64, reason: ShedReason) {
        metrics::shed_counter(reason).add(1);
        // Sheds bypass sampling: each one is an exemplar (the event
        // carries the input bit pattern behind the shed).
        flight::shed_event(func, x_bits, tag, reason);
        if reason == ShedReason::Corrupted
            && !self.corruption_dumped
            && rlibm_obs::enabled()
            && self.flight.len() < flight::FLIGHT_DUMPS_PER_SHARD
        {
            self.corruption_dumped = true;
            self.flight.push(flight::capture_flight(
                self.quiesce.shard,
                FlightTrigger::Corruption,
                0,
            ));
        }
        self.sheds.push(Shed { func, x_bits, tag, reason });
    }
}

// Takes the batch, chaos state and completion log as disjoint borrows of
// ShardState (they cannot be passed as one &mut without aliasing the
// batch), hence the argument count.
#[allow(clippy::too_many_arguments)]
fn flush(
    shard: usize,
    func: u8,
    batch: &mut Batch,
    scratch: &mut Scratch,
    chaos: &mut ChaosState,
    queue: &MpmcQueue<Request>,
    epoch: Instant,
    completions: &mut Vec<Completion>,
    attribution: &mut StageAttribution,
) {
    let n = batch.len;
    if n == 0 {
        return;
    }
    // Chaos hooks fire before any completion is recorded: a panic here
    // leaves the whole batch in flight for the supervisor to salvage.
    chaos.fire_panic_if_armed();
    chaos.maybe_delay();
    // Kernel timing brackets only the slice eval (the chaos hooks above
    // would otherwise dominate under injected delays). The context byte
    // lets rescalar lanes inside the kernel stamp their exemplars with
    // this function id; draining the fallback accumulator here discards
    // any stale ns from non-serve work on this thread.
    let trace_on = rlibm_obs::enabled();
    let t_kernel0 = if trace_on {
        trace::set_context(func);
        let _ = trace::take_fallback_ns();
        // The flush *timing* is unconditional (exact attribution); the
        // flush *event* follows the tag-hash sample of its first lane so
        // the ring stays proportional to the sampling rate.
        if trace::sampled(batch.tag[0]) {
            trace::emit(TraceKind::BatchFlush, func, batch.tag[0], n as u32);
        }
        epoch.elapsed().as_nanos() as u64
    } else {
        0
    };
    if workload::is_posit(func) {
        for i in 0..n {
            scratch.pxs[i] = Posit32::from_bits(batch.x_bits[i]);
        }
        workload::posit_slice_eval(func, &scratch.pxs[..n], &mut scratch.pys[..n]);
    } else {
        for i in 0..n {
            scratch.xs[i] = f32::from_bits(batch.x_bits[i]);
        }
        workload::f32_slice_eval(func, &scratch.xs[..n], &mut scratch.ys[..n]);
    }
    let now = epoch.elapsed().as_nanos() as u64;
    if trace_on {
        let kernel_ns = now.saturating_sub(t_kernel0);
        let fallback_ns = trace::take_fallback_ns();
        metrics::trace_kernel_ns().record(kernel_ns);
        if fallback_ns > 0 {
            metrics::trace_fallback_ns().record(fallback_ns);
        }
        attribution.kernel_ns += kernel_ns;
        attribution.fallback_ns += fallback_ns;
        attribution.kernel_lanes += n as u64;
        attribution.batches += 1;
    }
    metrics::batches(shard).add(1);
    metrics::batch_lanes(shard).add(n as u64);
    metrics::queue_depth(shard).record(queue.len() as u64);
    let lat = metrics::latency_ns(shard);
    for i in 0..n {
        let latency_ns = now.saturating_sub(batch.t_enq[i]);
        lat.record(latency_ns);
        let y_bits = if workload::is_posit(func) {
            scratch.pys[i].to_bits()
        } else {
            scratch.ys[i].to_bits()
        };
        // A nonzero dequeue stamp marks a trace-sampled lane: close its
        // span with the queue-wait / batch-residency split and a
        // Complete event echoing the end-to-end latency.
        if batch.t_deq[i] > 0 {
            let queue_wait = batch.t_deq[i].saturating_sub(batch.t_enq[i]);
            let batch_wait = t_kernel0.saturating_sub(batch.t_deq[i]);
            metrics::trace_sampled().add(1);
            metrics::trace_queue_wait_ns().record(queue_wait);
            metrics::trace_batch_wait_ns().record(batch_wait);
            attribution.samples += 1;
            attribution.queue_ns += queue_wait;
            attribution.batch_ns += batch_wait;
            trace::emit(
                TraceKind::Complete,
                func,
                batch.tag[i],
                latency_ns.min(u64::from(u32::MAX)) as u32,
            );
        }
        completions.push(Completion {
            func,
            x_bits: batch.x_bits[i],
            y_bits,
            tag: batch.tag[i],
            latency_ns,
        });
    }
    batch.len = 0;
}

/// One supervised pass of the shard: drain the ring, batch, flush.
/// Returns normally only at quiesce — once the driver has raised `stop`
/// (admission closed, producers joined, so no push can race it) and the
/// ring and every accumulator are empty. A panic (injected or real)
/// unwinds into the supervisor with `state` intact.
pub(crate) fn shard_pass(
    shard: usize,
    queue: &MpmcQueue<Request>,
    ctrl: &ServiceControl,
    epoch: Instant,
    state: &mut ShardState,
) {
    let mut scratch = Scratch::new();
    let st = &mut *state;
    loop {
        match queue.pop() {
            Some(mut req) => {
                metrics::requests(shard).add(1);
                if ctrl.stopping() {
                    st.quiesce.drained_requests += 1;
                }
                st.chaos.maybe_corrupt(&mut req);
                if !req.verify() {
                    st.shed(req.func, req.x_bits, req.tag, ShedReason::Corrupted);
                    continue;
                }
                let f = workload::fold(req.func);
                // Deterministic tag-hash sampling: every stage of the
                // pipeline agrees on the sample set, so a sampled request
                // yields a complete span. One clock read serves both the
                // deadline check and the dequeue stamp.
                let trace_on = rlibm_obs::enabled() && trace::sampled(req.tag);
                let mut now = 0u64;
                if req.deadline_ns != NO_DEADLINE || trace_on {
                    now = epoch.elapsed().as_nanos() as u64;
                }
                if req.deadline_ns != NO_DEADLINE && now > req.deadline_ns {
                    metrics::shed_overdue_ns().record(now - req.deadline_ns);
                    st.shed(req.func, req.x_bits, req.tag, ShedReason::Deadline);
                    continue;
                }
                let t_deq = if trace_on {
                    let queue_wait = now.saturating_sub(req.t_enqueue_ns);
                    trace::emit(
                        TraceKind::Dequeue,
                        f as u8,
                        req.tag,
                        queue_wait.min(u64::from(u32::MAX)) as u32,
                    );
                    // max(1): a zero stamp means "not sampled" in the
                    // batch columns.
                    now.max(1)
                } else {
                    0
                };
                if st.batches[f].push(&req, t_deq) {
                    flush(
                        shard,
                        f as u8,
                        &mut st.batches[f],
                        &mut scratch,
                        &mut st.chaos,
                        queue,
                        epoch,
                        &mut st.completions,
                        &mut st.attribution[f],
                    );
                }
            }
            None => {
                let mut flushed_lanes = 0u64;
                for f in 0..workload::NUM_FUNCS {
                    if st.batches[f].len > 0 {
                        flushed_lanes += st.batches[f].len as u64;
                        flush(
                            shard,
                            f as u8,
                            &mut st.batches[f],
                            &mut scratch,
                            &mut st.chaos,
                            queue,
                            epoch,
                            &mut st.completions,
                            &mut st.attribution[f],
                        );
                    }
                }
                if flushed_lanes == 0 {
                    if ctrl.stopping() && queue.is_empty() {
                        break;
                    }
                    // Closed-loop friendly idle: yield so producers (and,
                    // on a single hardware thread, everyone else) run.
                    std::thread::yield_now();
                } else if ctrl.stopping() {
                    st.quiesce.trailing_flush_lanes += flushed_lanes;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_any_single_bit_corruption_of_x_bits() {
        let req = Request::new(3, 0xDEAD_BEEF, make_tag(2, 77), 1_000, 5_000);
        assert!(req.verify());
        for bit in 0..32 {
            let mut bad = req;
            bad.x_bits ^= 1 << bit;
            assert!(!bad.verify(), "bit {bit} flip went undetected");
        }
        // The other fields are covered too (probabilistically exact for
        // these spot checks).
        for bad in [
            Request { tag: req.tag + 1, ..req },
            Request { func: req.func + 1, ..req },
            Request { deadline_ns: req.deadline_ns + 1, ..req },
            Request { t_enqueue_ns: req.t_enqueue_ns + 1, ..req },
        ] {
            assert!(!bad.verify());
        }
    }

    /// The u32 tag scheme collided at 2^24 requests per producer
    /// (`(p << 24) | (j & 0xFF_FFFF)`); the u64 scheme must not.
    #[test]
    fn tags_do_not_collide_past_the_old_24_bit_boundary() {
        // The exact collision pair under the old scheme.
        assert_ne!(make_tag(0, 1 << 24), make_tag(1, 0));
        // Dense probe around the boundary, several producers.
        let mut tags: Vec<u64> = Vec::new();
        for p in 0..4 {
            for j in ((1u64 << 24) - 4)..((1u64 << 24) + 4) {
                tags.push(make_tag(p, j));
            }
        }
        let n = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), n, "tag collision across the 2^24 boundary");
        // And the documented capacity bounds round-trip.
        assert_eq!(make_tag(5, 9) >> TAG_SEQ_BITS, 5);
        assert_eq!(make_tag(5, 9) & ((1 << TAG_SEQ_BITS) - 1), 9);
    }
}
