//! The shard worker: drains its request ring, batches per function into
//! 64-lane slice chunks, and resolves completions.
//!
//! Zero allocation per request: the per-function accumulators are fixed
//! `[_; 64]` arrays owned by the worker, the slice staging buffers are
//! stack arrays, and the completion log is one `Vec` pre-sized by the
//! driver (pushes stay within capacity in the closed loop). The only
//! heap traffic after startup is the final hand-off of that log.
//!
//! Batching policy: a full 64-lane batch flushes immediately; any
//! partially filled batches flush as soon as the ring runs dry, so an
//! idle service converges to scalar-sized batches (low latency) and a
//! loaded one to full chunks (high throughput) without a timer.

use crate::metrics;
use crate::queue::MpmcQueue;
use crate::workload;
use rlibm_posit::Posit32;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Lanes per flush — the slice kernels' chunk width.
pub const BATCH: usize = 64;

/// One request: a function id, the argument bit pattern, a caller tag
/// echoed into the completion, and the enqueue timestamp (nanoseconds
/// since the service epoch) that anchors the latency measurement.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    pub func: u8,
    pub x_bits: u32,
    pub tag: u32,
    pub t_enqueue_ns: u64,
}

/// One served response, with the measured enqueue-to-completion latency.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    pub func: u8,
    pub x_bits: u32,
    pub y_bits: u32,
    pub tag: u32,
    pub latency_ns: u64,
}

/// Per-function accumulator: parallel columns of a pending batch.
struct Batch {
    x_bits: [u32; BATCH],
    tag: [u32; BATCH],
    t_enq: [u64; BATCH],
    len: usize,
}

impl Batch {
    const fn new() -> Batch {
        Batch { x_bits: [0; BATCH], tag: [0; BATCH], t_enq: [0; BATCH], len: 0 }
    }

    #[inline]
    fn push(&mut self, req: Request) -> bool {
        self.x_bits[self.len] = req.x_bits;
        self.tag[self.len] = req.tag;
        self.t_enq[self.len] = req.t_enqueue_ns;
        self.len += 1;
        self.len == BATCH
    }
}

/// Scratch for the slice staging buffers (stack arrays, reused across
/// flushes).
struct Scratch {
    xs: [f32; BATCH],
    ys: [f32; BATCH],
    pxs: [Posit32; BATCH],
    pys: [Posit32; BATCH],
}

fn flush(
    shard: usize,
    func: u8,
    batch: &mut Batch,
    scratch: &mut Scratch,
    queue: &MpmcQueue<Request>,
    epoch: Instant,
    completions: &mut Vec<Completion>,
) {
    let n = batch.len;
    if n == 0 {
        return;
    }
    if workload::is_posit(func) {
        for i in 0..n {
            scratch.pxs[i] = Posit32::from_bits(batch.x_bits[i]);
        }
        workload::posit_slice_eval(func, &scratch.pxs[..n], &mut scratch.pys[..n]);
    } else {
        for i in 0..n {
            scratch.xs[i] = f32::from_bits(batch.x_bits[i]);
        }
        workload::f32_slice_eval(func, &scratch.xs[..n], &mut scratch.ys[..n]);
    }
    let now = epoch.elapsed().as_nanos() as u64;
    metrics::batches(shard).add(1);
    metrics::batch_lanes(shard).add(n as u64);
    metrics::queue_depth(shard).record(queue.len() as u64);
    let lat = metrics::latency_ns(shard);
    for i in 0..n {
        let latency_ns = now.saturating_sub(batch.t_enq[i]);
        lat.record(latency_ns);
        let y_bits = if workload::is_posit(func) {
            scratch.pys[i].to_bits()
        } else {
            scratch.ys[i].to_bits()
        };
        completions.push(Completion {
            func,
            x_bits: batch.x_bits[i],
            y_bits,
            tag: batch.tag[i],
            latency_ns,
        });
    }
    batch.len = 0;
}

/// Runs one shard to completion: drain the ring, batch, flush; once
/// `stop` is raised (the driver sets it only after every producer has
/// joined, so no push can race it) and the ring and all accumulators are
/// empty, return the completion log.
pub(crate) fn shard_worker(
    shard: usize,
    queue: &MpmcQueue<Request>,
    stop: &AtomicBool,
    epoch: Instant,
    expected: usize,
) -> Vec<Completion> {
    let mut completions = Vec::with_capacity(expected);
    let mut batches: Vec<Batch> = (0..workload::NUM_FUNCS).map(|_| Batch::new()).collect();
    let mut scratch =
        Scratch { xs: [0.0; BATCH], ys: [0.0; BATCH], pxs: [Posit32::ZERO; BATCH], pys: [Posit32::ZERO; BATCH] };
    loop {
        match queue.pop() {
            Some(req) => {
                metrics::requests(shard).add(1);
                let f = workload::fold(req.func);
                if batches[f].push(req) {
                    flush(shard, f as u8, &mut batches[f], &mut scratch, queue, epoch, &mut completions);
                }
            }
            None => {
                let mut flushed = false;
                for (f, batch) in batches.iter_mut().enumerate() {
                    if batch.len > 0 {
                        flush(shard, f as u8, batch, &mut scratch, queue, epoch, &mut completions);
                        flushed = true;
                    }
                }
                if !flushed {
                    if stop.load(Ordering::Acquire) && queue.is_empty() {
                        break;
                    }
                    // Closed-loop friendly idle: yield so producers (and,
                    // on a single hardware thread, everyone else) run.
                    std::thread::yield_now();
                }
            }
        }
    }
    completions
}
