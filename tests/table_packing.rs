//! Pins the bit-packed lookup tables to the pre-packing era.
//!
//! `tests/data/tables_v1_bits.txt` is the committed hex dump of every
//! table entry and double-double constant as they were when the tables
//! were hand-committed `(f64, f64)` arrays. The build-time packer
//! (`crates/libm/build.rs`) must reproduce each of them **byte for
//! byte** through the public accessors — any drift here means the
//! packed representation changed numerics, which invalidates every
//! certification artifact at once.
//!
//! A second half sweeps the codec itself: `pack -> unpack` must be the
//! identity on every representable value at each (hi_base, lo_base)
//! window actually used by a shipped table, and the encoder must reject
//! everything outside its window rather than silently saturate.

use rlibm_math::tables;
use rlibm_math::tables_codec as codec;

/// One parsed line of the v1 bits file.
enum Row {
    /// `NAME idx hi_bits lo_bits`
    Entry { table: String, idx: usize, hi: u64, lo: u64 },
    /// `CONST NAME bits`
    Const { name: String, bits: u64 },
}

fn parse_bits_file() -> Vec<Row> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/tables_v1_bits.txt");
    let text = std::fs::read_to_string(path).expect("committed bits file");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            let hex = |s: &str| u64::from_str_radix(s, 16).expect("hex field");
            match f.as_slice() {
                ["CONST", name, bits] => Row::Const { name: name.to_string(), bits: hex(bits) },
                [table, idx, hi, lo] => Row::Entry {
                    table: table.to_string(),
                    idx: idx.parse().expect("index field"),
                    hi: hex(hi),
                    lo: hex(lo),
                },
                _ => panic!("malformed line: {l}"),
            }
        })
        .collect()
}

/// Resolves a table name to its public accessor.
fn lookup(table: &str, idx: usize) -> (f64, f64) {
    match table {
        "EXP2_64" => tables::exp2_64(idx),
        "LN_F" => tables::ln_f(idx),
        "LOG2_F" => tables::log2_f(idx),
        "LOG10_F" => tables::log10_f(idx),
        "SINPI_T" => tables::sinpi_t(idx),
        "COSPI_T" => tables::cospi_t(idx),
        other => panic!("unknown table {other}"),
    }
}

/// Resolves a constant name to its generated value.
fn lookup_const(name: &str) -> f64 {
    match name {
        "LN2_HI" => tables::LN2_HI,
        "LN2_LO" => tables::LN2_LO,
        "LN10_HI" => tables::LN10_HI,
        "LN10_LO" => tables::LN10_LO,
        "PI_HI" => tables::PI_HI,
        "PI_LO" => tables::PI_LO,
        "INV_LN2_HI" => tables::INV_LN2_HI,
        "INV_LN2_LO" => tables::INV_LN2_LO,
        "INV_LN10_HI" => tables::INV_LN10_HI,
        "INV_LN10_LO" => tables::INV_LN10_LO,
        "LOG10_2_HI" => tables::LOG10_2_HI,
        "LOG10_2_LO" => tables::LOG10_2_LO,
        "LN2_64_HI" => tables::LN2_64_HI,
        "LN2_64_MID" => tables::LN2_64_MID,
        "LN2_64_LO" => tables::LN2_64_LO,
        "LN2_HI42" => tables::LN2_HI42,
        "LN2_MID" => tables::LN2_MID,
        "LN2_LO42" => tables::LN2_LO42,
        "SINPI_C3" => tables::SINPI_C3,
        "SINPI_C5" => tables::SINPI_C5,
        "SINPI_C7" => tables::SINPI_C7,
        "COSPI_C2_HI" => tables::COSPI_C2_HI,
        "COSPI_C2_LO" => tables::COSPI_C2_LO,
        "COSPI_C4" => tables::COSPI_C4,
        "COSPI_C6" => tables::COSPI_C6,
        "LOG2_10" => tables::LOG2_10,
        "LOG2_E" => tables::LOG2_E,
        other => panic!("unknown const {other}"),
    }
}

#[test]
fn every_packed_entry_matches_the_v1_bits() {
    let rows = parse_bits_file();
    // The dump must actually cover the whole surface: 64 + 3*129 + 2*257
    // table entries and the 27 shared constants.
    let entries = rows.iter().filter(|r| matches!(r, Row::Entry { .. })).count();
    let consts = rows.iter().filter(|r| matches!(r, Row::Const { .. })).count();
    assert_eq!(entries, 64 + 3 * 129 + 2 * 257, "bits file lost table rows");
    assert_eq!(consts, 27, "bits file lost constant rows");

    for row in &rows {
        match row {
            Row::Entry { table, idx, hi, lo } => {
                let (h, l) = lookup(table, *idx);
                assert_eq!(h.to_bits(), *hi, "{table}[{idx}] hi drifted");
                assert_eq!(l.to_bits(), *lo, "{table}[{idx}] lo drifted");
            }
            Row::Const { name, bits } => {
                assert_eq!(lookup_const(name).to_bits(), *bits, "{name} drifted");
            }
        }
    }
}

/// The (hi_base, lo_base) windows of every shipped packed table —
/// the widths the property sweep must cover.
const USED_BASES: [(&str, u64, u64); 5] = [
    ("EXP2_64", tables::EXP2_64_HI_BASE, tables::EXP2_64_LO_BASE),
    ("LN_F", tables::LN_F_HI_BASE, tables::LN_F_LO_BASE),
    ("LOG2_F", tables::LOG2_F_HI_BASE, tables::LOG2_F_LO_BASE),
    ("LOG10_F", tables::LOG10_F_HI_BASE, tables::LOG10_F_LO_BASE),
    ("SINPI_T", tables::SINPI_T_HI_BASE, tables::SINPI_T_LO_BASE),
];

/// Deterministic 64-bit mix (splitmix64) for the sweep inputs.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn roundtrip(hi: f64, lo: f64, hb: u64, lb: u64) -> (f64, f64) {
    let bytes = codec::pack_entry(hi, lo, hb, lb)
        .unwrap_or_else(|| panic!("pack rejected hi={hi:e} lo={lo:e} at ({hb},{lb})"));
    codec::unpack_entry(&bytes, 0, hb, lb)
}

#[test]
fn pack_unpack_roundtrips_every_used_window() {
    for &(name, hb, lb) in &USED_BASES {
        for i in 0..20_000u64 {
            let r = mix(i.wrapping_mul(0x6C62_72E6).wrapping_add(hb * 31 + lb));
            // Exponent uniform over the 15-code window, mantissa random,
            // lo sign random; hi is non-negative by the codec contract.
            let hexp = hb + (r >> 52) % 15;
            let hbits = (hexp << 52) | (r & codec::MANT52_MASK);
            let r2 = mix(r);
            let lexp = lb + (r2 >> 52) % 15;
            let lsign = (r2 >> 51) & 1;
            let lbits = (lsign << 63) | (lexp << 52) | (r2 & codec::MANT52_MASK);
            let (hi, lo) = (f64::from_bits(hbits), f64::from_bits(lbits));
            let (h, l) = roundtrip(hi, lo, hb, lb);
            assert_eq!(h.to_bits(), hbits, "{name}: hi roundtrip at iter {i}");
            assert_eq!(l.to_bits(), lbits, "{name}: lo roundtrip at iter {i}");
        }
        // Window and mantissa boundaries, and the zero select.
        for code in [0u64, 1, 14] {
            let exp = hb + code;
            for mant in [0u64, 1, codec::MANT52_MASK] {
                let hbits = (exp << 52) | mant;
                let (h, l) = roundtrip(f64::from_bits(hbits), 0.0, hb, lb);
                assert_eq!(h.to_bits(), hbits, "{name}: hi boundary");
                assert_eq!(l.to_bits(), 0, "{name}: zero lo must stay +0.0");
            }
        }
        let (h, _) = roundtrip(0.0, 0.0, hb, lb);
        assert_eq!(h.to_bits(), 0, "{name}: zero hi must stay +0.0");
    }
}

#[test]
fn encoder_rejects_out_of_window_values() {
    for &(name, hb, lb) in &USED_BASES {
        let below = f64::from_bits((hb - 1) << 52);
        let above = f64::from_bits((hb + 15) << 52);
        let inside = f64::from_bits(hb << 52);
        let lo_in = f64::from_bits(lb << 52);
        assert!(codec::pack_entry(below, lo_in, hb, lb).is_none(), "{name}: exp below window");
        assert!(codec::pack_entry(above, lo_in, hb, lb).is_none(), "{name}: exp above window");
        assert!(codec::pack_entry(-inside, lo_in, hb, lb).is_none(), "{name}: negative hi");
        assert!(codec::pack_entry(inside, -0.0, hb, lb).is_none(), "{name}: -0.0 lo");
        assert!(
            codec::pack_entry(f64::INFINITY, lo_in, hb, lb).is_none(),
            "{name}: non-finite hi"
        );
        assert!(codec::pack_entry(inside, f64::NAN, hb, lb).is_none(), "{name}: NaN lo");
        // Subnormals have exponent field 0, always outside a table window.
        assert!(
            codec::pack_entry(f64::from_bits(1), lo_in, hb, lb).is_none(),
            "{name}: subnormal hi"
        );
    }
}

#[test]
fn packed_layout_matches_its_advertised_footprint() {
    let packed = tables::EXP2_64_P.len()
        + tables::LN_F_P.len()
        + tables::LOG2_F_P.len()
        + tables::LOG10_F_P.len()
        + tables::SINPI_T_P.len();
    assert_eq!(packed, tables::TABLE_BYTES_PACKED);
    assert_eq!(tables::EXP2_64_P.len(), 64 * codec::PACKED_STRIDE);
    assert_eq!(tables::LN_F_P.len(), 129 * codec::PACKED_STRIDE);
    assert_eq!(tables::SINPI_T_P.len(), 257 * codec::PACKED_STRIDE);
    // The unpacked footprint these replaced: 16 bytes per (f64, f64)
    // entry including the COSPI_T table the mirror identity eliminated.
    assert_eq!(tables::TABLE_BYTES_UNPACKED, 16 * (64 + 3 * 129 + 2 * 257));
}
