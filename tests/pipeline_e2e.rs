//! End-to-end pipeline tests spanning every crate: oracle (`rlibm-mp`),
//! intervals/splitting/CEGIS (`rlibm-core`), exact LP (`rlibm-lp`) and
//! the target representations (`rlibm-fp`, `rlibm-posit`).

use rlibm::fp::{BFloat16, Half};
use rlibm::gen::pipeline::{generate, GeneratorSpec};
use rlibm::gen::validate::{all_16bit, validate};
use rlibm::mp::oracle::is_special_case;
use rlibm::mp::Func;
use std::sync::Arc;

fn non_special<T: rlibm_fp::Representation>(f: Func) -> impl Fn(&T) -> bool {
    move |x: &T| {
        let v = x.to_f64();
        v.is_finite() && !is_special_case(f, v)
    }
}

/// The paper's Table 3 highlight — sinpi admits a single polynomial on
/// the reduced domain — reproduced end to end for a 16-bit target with a
/// REAL two-function range reduction: sinpi(x) with x in [1/256, 1/2]
/// reduced by the double-angle identity sinpi(2r) = 2 sinpi(r) cospi(r).
#[test]
fn sinpi_double_angle_two_component_reduction() {
    let keep = non_special::<Half>(Func::SinPi);
    let inputs: Vec<Half> = all_16bit::<Half>()
        .filter(|x| {
            let v = x.to_f64();
            keep(x) && (1.0 / 256.0..=0.5).contains(&v)
        })
        .collect();
    assert!(inputs.len() > 2000);
    let mk_cfg = |terms: Vec<u32>| rlibm::gen::ApproxConfig {
        polygen: rlibm::gen::PolyGenConfig { terms, ..Default::default() },
        ..Default::default()
    };
    let spec = GeneratorSpec {
        func: Func::SinPi,
        components: vec![Func::SinPi, Func::CosPi],
        range_reduce: Arc::new(|x| x * 0.5),
        output_comp: Arc::new(|vals, _| 2.0 * vals[0] * vals[1]),
        approx_cfgs: vec![mk_cfg(vec![1, 3, 5]), mk_cfg(vec![0, 2, 4])],
    };
    let g = generate(&spec, &inputs).expect("two-component generation");
    let report = validate(
        Func::SinPi,
        |x: Half| Half::from_f64(g.eval(x.to_f64())),
        inputs.iter().copied(),
    );
    assert!(
        report.all_correct(),
        "{} of {} wrong: {:?}",
        report.wrong,
        report.total,
        report.examples.first()
    );
    assert_eq!(g.components().len(), 2, "sinpi AND cospi polynomials");
}

/// Output compensation with a table-style multiplier: ln(x) for x in
/// [1, 2) via ln(x) = ln2 + ln(x/2)... realized as f(r) with r = x/2 and
/// OC(v) = v + ln 2 (monotone, one component).
#[test]
fn ln_with_additive_output_compensation() {
    let ln2 = std::f64::consts::LN_2;
    let keep = non_special::<BFloat16>(Func::Ln);
    let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
        .filter(|x| {
            let v = x.to_f64();
            keep(x) && (1.0..2.0).contains(&v)
        })
        .collect();
    let spec = GeneratorSpec {
        func: Func::Ln,
        components: vec![Func::Ln],
        range_reduce: Arc::new(|x| x * 0.5), // exact
        output_comp: Arc::new(move |vals, _| vals[0] + ln2),
        approx_cfgs: vec![rlibm::gen::ApproxConfig {
            polygen: rlibm::gen::PolyGenConfig {
                terms: (0..=6).collect(),
                ..Default::default()
            },
            ..Default::default()
        }],
    };
    let g = generate(&spec, &inputs).expect("generation");
    let report = validate(
        Func::Ln,
        |x: BFloat16| BFloat16::from_f64(g.eval(x.to_f64())),
        inputs.iter().copied(),
    );
    assert!(report.all_correct(), "{} wrong", report.wrong);
}

/// The generated implementation must also use few pieces: the paper's
/// efficiency claim for the counterexample-guided generator.
#[test]
fn generated_piecewise_is_small() {
    let keep = non_special::<Half>(Func::Exp2);
    let inputs: Vec<Half> = all_16bit::<Half>()
        .filter(|x| keep(x) && x.to_f64().abs() <= 0.5)
        .collect();
    let spec = GeneratorSpec::identity(Func::Exp2, (0..=6).collect());
    let g = generate(&spec, &inputs).expect("generation");
    let st = g.stats();
    assert!(
        st.piecewise_sizes[0] <= 8,
        "exp2 on [-1/2, 1/2] must need few sub-domains, got {}",
        st.piecewise_sizes[0]
    );
    let report = validate(
        Func::Exp2,
        |x: Half| Half::from_f64(g.eval(x.to_f64())),
        inputs.iter().copied(),
    );
    assert!(report.all_correct());
}

/// Generator statistics feed Table 3: sanity-check their shape.
#[test]
fn stats_shape() {
    let keep = non_special::<BFloat16>(Func::Cosh);
    let inputs: Vec<BFloat16> = all_16bit::<BFloat16>()
        .filter(|x| keep(x) && x.to_f64().abs() <= 0.25)
        .collect();
    let spec = GeneratorSpec::identity(Func::Cosh, vec![0, 2, 4]);
    let g = generate(&spec, &inputs).expect("generation");
    let st = g.stats();
    assert!(st.seconds > 0.0);
    assert!(st.reduced_inputs > 100);
    assert_eq!(st.piecewise_sizes.len(), 1);
    assert!(st.degrees[0] <= 4);
    assert!(st.lp_calls >= 1);
}
