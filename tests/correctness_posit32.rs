//! Cross-crate correctness: the posit32 library vs the oracle (Table 2's
//! RLIBM-32 column), plus the saturation semantics that the re-purposed
//! double libraries get wrong.

use rlibm::gen::validate::{stratified_posit32, validate};
use rlibm::mp::Func;
use rlibm::posit::Posit32;
use rlibm_fp::Representation;

fn sample_count() -> u32 {
    if cfg!(debug_assertions) {
        300
    } else {
        6000
    }
}

fn check(f: Func) {
    let xs = stratified_posit32(sample_count(), 0xFACE + f.name().len() as u64);
    let report = validate(
        f,
        |x: Posit32| rlibm::math::eval_posit32_by_name(f.name(), x).expect("known name"),
        xs.iter().copied(),
    );
    assert!(
        report.all_correct(),
        "{}: {} of {} wrong; first: {:?}",
        f.name(),
        report.wrong,
        report.total,
        report.examples.first()
    );
}

#[test]
fn ln_posit_correct() {
    check(Func::Ln);
}

#[test]
fn log2_posit_correct() {
    check(Func::Log2);
}

#[test]
fn log10_posit_correct() {
    check(Func::Log10);
}

#[test]
fn exp_posit_correct() {
    check(Func::Exp);
}

#[test]
fn exp2_posit_correct() {
    check(Func::Exp2);
}

#[test]
fn exp10_posit_correct() {
    check(Func::Exp10);
}

#[test]
fn sinh_posit_correct() {
    check(Func::Sinh);
}

#[test]
fn cosh_posit_correct() {
    check(Func::Cosh);
}

/// The dense high-precision region around 1.0 (posit32's 27 fraction
/// bits), where a float32-grade kernel would misround.
#[test]
fn tapered_precision_region_dense() {
    let n = if cfg!(debug_assertions) { 100u32 } else { 4000 };
    let one = Posit32::ONE.to_bits_u32();
    for i in 0..n {
        for &bits in &[one + i * 7, one - i * 11] {
            let x = Posit32::from_bits(bits);
            for f in [Func::Ln, Func::Exp, Func::Log2] {
                let got = rlibm::math::eval_posit32_by_name(f.name(), x).expect("known name");
                let want: Posit32 = rlibm::mp::correctly_rounded(f, x);
                assert_eq!(got, want, "{}({})", f.name(), x);
            }
        }
    }
}

/// Saturation across the whole boundary band for exp.
#[test]
fn exp_saturation_band() {
    // ln(maxpos) = 83.177...: everything above must saturate to maxpos
    // and everything below -ln(maxpos) to minpos, never 0 or NaR.
    for i in 0..200 {
        let x = Posit32::from_f64(82.0 + i as f64 * 0.05);
        let y = rlibm::math::posit::exp_p32(x);
        let want: Posit32 = rlibm::mp::correctly_rounded(Func::Exp, x);
        assert_eq!(y, want, "exp({x})");
        assert!(!y.is_nar());
        let z = rlibm::math::posit::exp_p32(-x);
        assert!(!z.is_zero() && !z.is_nar(), "exp(-{x}) must not flush");
    }
}
