//! Certification sweep for the two-tier kernels: the fast-path +
//! fallback composition must be **bit-identical** to the pure
//! double-double reference (`*_dd` entry points) for every function.
//!
//! The dd kernels are validated against the multi-precision oracle by
//! `correctness_f32.rs` / `correctness_posit.rs`; bit agreement here
//! transfers that correctness to the two-tier implementations without
//! paying the oracle's cost, which lets this sweep run orders of
//! magnitude more inputs: the exhaustive bfloat16 domain plus a
//! million-input stratified sample per function in release (scaled down
//! in debug where everything is unoptimized).

use rlibm::gen::par;
use rlibm::gen::validate::{agreement, agreement_par, stratified_f32, stratified_posit32};
use rlibm::mp::Func;

/// Release: 2 signs x 255 exponents x 1961 ~= 1.0M inputs per function.
fn per_exponent() -> u32 {
    if cfg!(debug_assertions) {
        40
    } else {
        1961
    }
}

fn posit_count() -> u32 {
    if cfg!(debug_assertions) {
        20_000
    } else {
        1_000_000
    }
}

fn report_failure(name: &str, kind: &str, report: &rlibm::gen::validate::ValidationReport) {
    assert!(
        report.all_correct(),
        "{name} ({kind}): two-tier diverges from dd on {} of {} inputs; first: {:?}",
        report.wrong,
        report.total,
        report.examples.first().map(|e| {
            (
                f32::from_bits(e.0),
                f32::from_bits(e.1),
                f32::from_bits(e.2),
            )
        })
    );
}

/// Every bfloat16 bit pattern, widened exactly into f32 and pushed
/// through the full f32 pipeline (bf16 is a strict subset of f32, so
/// this is an exhaustive domain for the two-tier decision logic's
/// coarse-grid inputs: specials, subnormals, saturation tails included).
#[test]
fn f32_two_tier_matches_dd_on_exhaustive_bf16_domain() {
    let inputs: Vec<f32> = (0..=u16::MAX)
        .map(|b| rlibm::fp::BFloat16::from_bits(b).to_f64() as f32)
        .collect();
    for f in Func::ALL {
        let two_tier = rlibm::math::f32_fn_by_name(f.name()).expect("known name");
        let dd = rlibm::math::f32_dd_fn_by_name(f.name()).expect("known name");
        let report = agreement(two_tier, dd, inputs.iter().copied());
        assert_eq!(report.total, 1 << 16);
        report_failure(f.name(), "bf16 domain", &report);
    }
}

#[test]
fn f32_two_tier_matches_dd_on_stratified_sweep() {
    for f in Func::ALL {
        // Seed differs per function so sweeps don't share mantissas.
        let xs = stratified_f32(per_exponent(), 0x2715 + f.name().len() as u64);
        let two_tier = rlibm::math::f32_fn_by_name(f.name()).expect("known name");
        let dd = rlibm::math::f32_dd_fn_by_name(f.name()).expect("known name");
        let report = agreement_par(two_tier, dd, &xs, par::num_threads());
        report_failure(f.name(), "stratified f32", &report);
    }
}

#[test]
fn posit32_two_tier_matches_dd_on_stratified_sweep() {
    for f in Func::POSIT {
        let xs = stratified_posit32(posit_count(), 0x9051 + f.name().len() as u64);
        let two_tier = rlibm::math::posit32_fn_by_name(f.name()).expect("known name");
        let dd = rlibm::math::posit32_dd_fn_by_name(f.name()).expect("known name");
        let report = agreement_par(two_tier, dd, &xs, par::num_threads());
        report_failure(f.name(), "stratified posit32", &report);
    }
}

/// One checksum over the batched API's outputs on a FIXED input set,
/// pinned to a constant — the feature-matrix identity gate. ci.sh runs
/// this test with default features and again with `--features simd`;
/// both must reproduce the same constant, so the AVX2 staged kernels
/// cannot change a single output bit relative to the scalar reference
/// (which is itself certified against dd above). The input set is
/// deliberately independent of `per_exponent()` so the constant holds
/// in debug and release builds alike: every bf16 pattern (specials,
/// subnormals, saturation tails) plus a fixed 200k-draw biased sweep
/// per function.
#[test]
fn batched_output_checksum_is_feature_invariant() {
    use rlibm_fp::rng::{draw_biased_f32, XorShift64};
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let bf16: Vec<f32> =
        (0..=u16::MAX).map(|b| rlibm::fp::BFloat16::from_bits(b).to_f64() as f32).collect();
    for (i, f) in Func::ALL.iter().enumerate() {
        let mut rng = XorShift64::new(0x51AB_C0DE ^ (i as u64));
        let mut inputs = bf16.clone();
        inputs.extend((0..200_000).map(|_| draw_biased_f32(&mut rng, f.name())));
        let mut out = vec![0.0f32; inputs.len()];
        rlibm::math::eval_slice_f32(f.name(), &inputs, &mut out).expect("known name");
        for y in out {
            // NaNs canonicalized: the identity contract for NaN lanes is
            // "a NaN comes back", not a payload guarantee.
            mix(if y.is_nan() { 0x7FC0_0000 } else { y.to_bits() });
        }
    }
    assert_eq!(
        h, 0x5AE7_6CCE_56B2_6D0E,
        "batched outputs changed: if this fails only with --features simd, \
         the AVX2 kernels diverged from the scalar reference; if it fails \
         in both configs, the kernels changed (re-pin after re-certifying)"
    );
}

/// The batched API must agree bit-for-bit with the scalar two-tier
/// functions on the same stratified inputs (plus every bf16 pattern).
#[test]
fn batched_matches_scalar_on_stratified_sweep() {
    let mut inputs: Vec<f32> = (0..=u16::MAX)
        .map(|b| rlibm::fp::BFloat16::from_bits(b).to_f64() as f32)
        .collect();
    inputs.extend(stratified_f32(per_exponent() / 4 + 1, 0xBA7C));
    let mut out = vec![0.0f32; inputs.len()];
    for f in Func::ALL {
        rlibm::math::eval_slice_f32(f.name(), &inputs, &mut out).expect("known name");
        let scalar = rlibm::math::f32_fn_by_name(f.name()).expect("known name");
        for (&x, &got) in inputs.iter().zip(out.iter()) {
            let want = scalar(x);
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "{}({x:e}): batched {got:e} vs scalar {want:e}",
                f.name()
            );
        }
    }
}
