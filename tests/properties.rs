//! Property-based tests (proptest) over the cross-crate invariants the
//! whole construction rests on.

use proptest::prelude::*;
use rlibm::fp::bits::{f64_from_order_key, f64_order_key};
use rlibm::fp::{BFloat16, Half, Representation};
use rlibm::gen::interval::rounding_interval;
use rlibm::math::dd::Dd;
use rlibm::math::round::{round_dd, to_f64_round_odd};
use rlibm::mp::{BigUint, MpFloat, Rational};
use rlibm::posit::Posit32;

fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|b| {
        let x = f64::from_bits(b);
        if x.is_finite() {
            x
        } else {
            f64::from_bits(b & 0x000F_FFFF_FFFF_FFFF | 0x3FF0_0000_0000_0000)
        }
    })
}

proptest! {
    /// The f64 order key is a monotone bijection on non-NaN doubles.
    #[test]
    fn order_key_roundtrips(a in finite_f64(), b in finite_f64()) {
        prop_assert_eq!(f64_from_order_key(f64_order_key(a)).to_bits(), a.to_bits());
        if a < b {
            prop_assert!(f64_order_key(a) < f64_order_key(b));
        }
    }

    /// Rounding-interval membership is exact: x in [lo, hi] iff x rounds
    /// to y — for floats AND posits.
    #[test]
    fn rounding_interval_membership_f32(x in finite_f64()) {
        let y = x as f32;
        if y.is_finite() {
            if let Some(iv) = rounding_interval(y) {
                prop_assert_eq!(iv.contains(x), (x as f32).to_bits() == y.to_bits());
            }
        }
    }

    #[test]
    fn rounding_interval_membership_posit32(x in -1e30f64..1e30) {
        let y = Posit32::from_f64(x);
        if !y.is_nar() {
            if let Some(iv) = rounding_interval(y) {
                prop_assert_eq!(
                    iv.contains(x),
                    Posit32::from_f64(x).to_bits() == y.to_bits()
                );
            }
        }
    }

    /// Posit32 round trips: decode then re-round is the identity.
    #[test]
    fn posit32_roundtrip(bits in any::<u32>()) {
        let p = Posit32::from_bits(bits);
        if !p.is_nar() {
            prop_assert_eq!(Posit32::from_f64(p.to_f64()).to_bits(), bits);
        }
    }

    /// Posit32 pattern order is value order (signed comparison).
    #[test]
    fn posit32_order_isomorphism(a in any::<u32>(), b in any::<u32>()) {
        let (pa, pb) = (Posit32::from_bits(a), Posit32::from_bits(b));
        if !pa.is_nar() && !pb.is_nar() {
            prop_assert_eq!((a as i32) < (b as i32), pa.to_f64() < pb.to_f64());
        }
    }

    /// bfloat16/half conversions are exact and monotone.
    #[test]
    fn small_float_roundtrip(bits in any::<u16>()) {
        let b = BFloat16::from_bits(bits);
        if !b.is_nan() {
            prop_assert_eq!(BFloat16::from_f64(b.to_f64()).to_bits(), bits);
        }
        let h = Half::from_bits(bits);
        if !h.is_nan() {
            prop_assert_eq!(Half::from_f64(h.to_f64()).to_bits(), bits);
        }
    }

    /// MpFloat agrees with f64 arithmetic when f64 is exact (products of
    /// 26-bit values).
    #[test]
    fn mpfloat_matches_exact_f64(a in -(1i64 << 26)..(1i64 << 26), b in -(1i64 << 26)..(1i64 << 26)) {
        let (af, bf) = (a as f64, b as f64);
        let ma = MpFloat::from_f64(af, 96);
        let mb = MpFloat::from_f64(bf, 96);
        prop_assert_eq!(ma.mul(&mb, 96).to_f64(), af * bf);
        prop_assert_eq!(ma.add(&mb, 96).to_f64(), af + bf);
        prop_assert_eq!(ma.sub(&mb, 96).to_f64(), af - bf);
    }

    /// Rational arithmetic satisfies the field axioms on random doubles.
    #[test]
    fn rational_field_axioms(a in finite_f64(), b in finite_f64(), c in finite_f64()) {
        let (ra, rb, rc) = (Rational::from_f64(a), Rational::from_f64(b), Rational::from_f64(c));
        prop_assert_eq!(ra.add(&rb), rb.add(&ra));
        prop_assert_eq!(ra.mul(&rb), rb.mul(&ra));
        prop_assert_eq!(ra.add(&rb).add(&rc), ra.add(&rb.add(&rc)));
        prop_assert_eq!(ra.mul(&rb.add(&rc)), ra.mul(&rb).add(&ra.mul(&rc)));
        if !rb.is_zero() {
            prop_assert_eq!(ra.div(&rb).mul(&rb), ra);
        }
    }

    /// BigUint division invariant: a = q*d + r with r < d.
    #[test]
    fn biguint_divrem_invariant(a in any::<u128>(), d in 1u64..) {
        let big_a = BigUint::from_u128(a);
        let big_d = BigUint::from_u64(d);
        let (q, r) = big_a.div_rem(&big_d);
        prop_assert!(r < big_d);
        prop_assert_eq!(q.mul(&big_d).add(&r), big_a);
    }

    /// round_dd performs a SINGLE rounding of hi+lo: it must agree with
    /// the oracle-grade MpFloat rounding of the exact sum.
    #[test]
    fn round_dd_is_single_rounding(hi in -1e30f64..1e30, lo_scale in -60i32..-50) {
        let lo = hi * 2f64.powi(lo_scale) * 0.7;
        let v = Dd::new(hi, lo);
        // Exact sum via 128-bit arithmetic.
        let exact = MpFloat::from_f64(v.hi, 128).add(&MpFloat::from_f64(v.lo, 128), 128);
        let want_f32: f32 = rlibm::mp::round_mp(&exact);
        let got_f32: f32 = round_dd(v);
        prop_assert_eq!(got_f32.to_bits(), want_f32.to_bits());
        let want_p32: Posit32 = rlibm::mp::round_mp(&exact);
        let got_p32: Posit32 = round_dd(v);
        prop_assert_eq!(got_p32.to_bits(), want_p32.to_bits());
        // And the round-odd double itself matches MpFloat's.
        prop_assert_eq!(to_f64_round_odd(v).to_bits(), exact.to_f64_round_odd().to_bits());
    }

    /// The f32 library functions are odd/even where mathematics says so.
    #[test]
    fn f32_symmetries(x in -1e6f32..1e6) {
        prop_assert_eq!(rlibm::math::sinh(-x).to_bits(), (-rlibm::math::sinh(x)).to_bits());
        prop_assert_eq!(rlibm::math::cosh(-x), rlibm::math::cosh(x));
        let (s, ns) = (rlibm::math::sinpi(x), rlibm::math::sinpi(-x));
        prop_assert!(ns == -s || (s == 0.0 && ns == 0.0));
        prop_assert_eq!(rlibm::math::cospi(-x), rlibm::math::cospi(x));
    }

    /// exp and ln are monotone over random pairs.
    #[test]
    fn f32_monotonicity(a in -80f32..80.0, b in -80f32..80.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(rlibm::math::exp(lo) <= rlibm::math::exp(hi));
        let (pa, pb) = (lo.abs() + 0.1, hi.abs() + 0.1);
        let (plo, phi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        prop_assert!(rlibm::math::ln(plo) <= rlibm::math::ln(phi));
    }
}
