//! Property-style tests over the cross-crate invariants the whole
//! construction rests on.
//!
//! Historically these used `proptest`; the workspace is now hermetic
//! (zero registry dependencies), so each property is checked over a
//! deterministic sweep of seeded xorshift64 samples instead. Same
//! invariants, reproducible inputs, offline build.

use rlibm::fp::bits::{f64_from_order_key, f64_order_key};
use rlibm::fp::rng::XorShift64;
use rlibm::fp::{BFloat16, Half};
use rlibm::gen::interval::rounding_interval;
use rlibm::math::dd::Dd;
use rlibm::math::round::{round_dd, to_f64_round_odd};
use rlibm::mp::{BigUint, MpFloat, Rational};
use rlibm::posit::Posit32;

/// Number of sampled cases per property (proptest's default was 256; the
/// deterministic sweeps are cheap enough to go broader).
const CASES: usize = 1024;

#[test]
fn order_key_roundtrips() {
    let mut rng = XorShift64::new(0xBDE11);
    for _ in 0..CASES {
        let (a, b) = (rng.finite_f64(), rng.finite_f64());
        assert_eq!(f64_from_order_key(f64_order_key(a)).to_bits(), a.to_bits());
        if a < b {
            assert!(f64_order_key(a) < f64_order_key(b), "a = {a:e}, b = {b:e}");
        }
    }
}

#[test]
fn rounding_interval_membership_f32() {
    let mut rng = XorShift64::new(0xBDE12);
    for _ in 0..CASES {
        let x = rng.finite_f64();
        let y = x as f32;
        if y.is_finite() {
            if let Some(iv) = rounding_interval(y) {
                assert_eq!(
                    iv.contains(x),
                    (x as f32).to_bits() == y.to_bits(),
                    "x = {x:e}"
                );
            }
        }
    }
}

#[test]
fn rounding_interval_membership_posit32() {
    let mut rng = XorShift64::new(0xBDE13);
    for _ in 0..CASES {
        let x = rng.uniform_f64(-1e30, 1e30);
        let y = Posit32::from_f64(x);
        if !y.is_nar() {
            if let Some(iv) = rounding_interval(y) {
                assert_eq!(
                    iv.contains(x),
                    Posit32::from_f64(x).to_bits() == y.to_bits(),
                    "x = {x:e}"
                );
            }
        }
    }
}

#[test]
fn posit32_roundtrip() {
    let mut rng = XorShift64::new(0xBDE14);
    for _ in 0..CASES {
        let bits = rng.next_u32();
        let p = Posit32::from_bits(bits);
        if !p.is_nar() {
            assert_eq!(Posit32::from_f64(p.to_f64()).to_bits(), bits);
        }
    }
}

#[test]
fn posit32_order_isomorphism() {
    let mut rng = XorShift64::new(0xBDE15);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let (pa, pb) = (Posit32::from_bits(a), Posit32::from_bits(b));
        if !pa.is_nar() && !pb.is_nar() {
            assert_eq!((a as i32) < (b as i32), pa.to_f64() < pb.to_f64());
        }
    }
}

#[test]
fn small_float_roundtrip() {
    // The 16-bit pattern space is small enough to sweep exhaustively.
    for bits in 0..=u16::MAX {
        let b = BFloat16::from_bits(bits);
        if !b.is_nan() {
            assert_eq!(BFloat16::from_f64(b.to_f64()).to_bits(), bits);
        }
        let h = Half::from_bits(bits);
        if !h.is_nan() {
            assert_eq!(Half::from_f64(h.to_f64()).to_bits(), bits);
        }
    }
}

#[test]
fn mpfloat_matches_exact_f64() {
    // Products of 26-bit values are exact in f64.
    let mut rng = XorShift64::new(0xBDE16);
    for _ in 0..CASES {
        let a = rng.uniform_i64(-(1 << 26), 1 << 26);
        let b = rng.uniform_i64(-(1 << 26), 1 << 26);
        let (af, bf) = (a as f64, b as f64);
        let ma = MpFloat::from_f64(af, 96);
        let mb = MpFloat::from_f64(bf, 96);
        assert_eq!(ma.mul(&mb, 96).to_f64(), af * bf);
        assert_eq!(ma.add(&mb, 96).to_f64(), af + bf);
        assert_eq!(ma.sub(&mb, 96).to_f64(), af - bf);
    }
}

#[test]
fn rational_field_axioms() {
    let mut rng = XorShift64::new(0xBDE17);
    for _ in 0..256 {
        let (a, b, c) = (rng.finite_f64(), rng.finite_f64(), rng.finite_f64());
        let (ra, rb, rc) = (
            Rational::from_f64(a),
            Rational::from_f64(b),
            Rational::from_f64(c),
        );
        assert_eq!(ra.add(&rb), rb.add(&ra));
        assert_eq!(ra.mul(&rb), rb.mul(&ra));
        assert_eq!(ra.add(&rb).add(&rc), ra.add(&rb.add(&rc)));
        assert_eq!(ra.mul(&rb.add(&rc)), ra.mul(&rb).add(&ra.mul(&rc)));
        if !rb.is_zero() {
            assert_eq!(ra.div(&rb).mul(&rb), ra);
        }
    }
}

#[test]
fn biguint_divrem_invariant() {
    let mut rng = XorShift64::new(0xBDE18);
    for _ in 0..CASES {
        let a = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let d = rng.next_u64().max(1);
        let big_a = BigUint::from_u128(a);
        let big_d = BigUint::from_u64(d);
        let (q, r) = big_a.div_rem(&big_d);
        assert!(r < big_d);
        assert_eq!(q.mul(&big_d).add(&r), big_a);
    }
}

#[test]
fn round_dd_is_single_rounding() {
    // round_dd performs a SINGLE rounding of hi+lo: it must agree with
    // the oracle-grade MpFloat rounding of the exact sum.
    let mut rng = XorShift64::new(0xBDE19);
    for _ in 0..CASES {
        let hi = rng.uniform_f64(-1e30, 1e30);
        let lo_scale = rng.uniform_i64(-60, -50) as i32;
        let lo = hi * 2f64.powi(lo_scale) * 0.7;
        let v = Dd::new(hi, lo);
        // Exact sum via 128-bit arithmetic.
        let exact = MpFloat::from_f64(v.hi, 128).add(&MpFloat::from_f64(v.lo, 128), 128);
        let want_f32: f32 = rlibm::mp::round_mp(&exact);
        let got_f32: f32 = round_dd(v);
        assert_eq!(got_f32.to_bits(), want_f32.to_bits(), "hi = {hi:e}");
        let want_p32: Posit32 = rlibm::mp::round_mp(&exact);
        let got_p32: Posit32 = round_dd(v);
        assert_eq!(got_p32.to_bits(), want_p32.to_bits(), "hi = {hi:e}");
        // And the round-odd double itself matches MpFloat's.
        assert_eq!(
            to_f64_round_odd(v).to_bits(),
            exact.to_f64_round_odd().to_bits()
        );
    }
}

#[test]
fn f32_symmetries() {
    let mut rng = XorShift64::new(0xBDE1A);
    for _ in 0..CASES {
        let x = rng.uniform_f32(-1e6, 1e6);
        assert_eq!(
            rlibm::math::sinh(-x).to_bits(),
            (-rlibm::math::sinh(x)).to_bits()
        );
        assert_eq!(rlibm::math::cosh(-x), rlibm::math::cosh(x));
        let (s, ns) = (rlibm::math::sinpi(x), rlibm::math::sinpi(-x));
        assert!(ns == -s || (s == 0.0 && ns == 0.0), "x = {x:e}");
        assert_eq!(rlibm::math::cospi(-x), rlibm::math::cospi(x));
    }
}

#[test]
fn f32_monotonicity() {
    let mut rng = XorShift64::new(0xBDE1B);
    for _ in 0..CASES {
        let a = rng.uniform_f32(-80.0, 80.0);
        let b = rng.uniform_f32(-80.0, 80.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(rlibm::math::exp(lo) <= rlibm::math::exp(hi));
        let (pa, pb) = (lo.abs() + 0.1, hi.abs() + 0.1);
        let (plo, phi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        assert!(rlibm::math::ln(plo) <= rlibm::math::ln(phi));
    }
}
