//! Meta-tests keeping the evaluation honest: the baseline models MUST
//! misround somewhere (otherwise Table 1/2's contrast is vacuous), and
//! the specific failure modes the paper describes must be present.

use rlibm::gen::validate::{stratified_f32, validate};
use rlibm::mp::Func;
use rlibm::posit::Posit32;

/// The float-libm model produces wrong results for a visible fraction of
/// inputs (the paper's X(1.7E5)..X(3.0E7) columns).
#[test]
fn float32_baseline_misrounds() {
    let n = if cfg!(debug_assertions) { 2 } else { 20 };
    let xs = stratified_f32(n, 77);
    let mut total_wrong = 0u64;
    for f in Func::ALL {
        let report = validate(
            f,
            |x: f32| match f.name() {
                "ln" => rlibm::math::baselines::float32::ln(x),
                "log2" => rlibm::math::baselines::float32::log2(x),
                "log10" => rlibm::math::baselines::float32::log10(x),
                "exp" => rlibm::math::baselines::float32::exp(x),
                "exp2" => rlibm::math::baselines::float32::exp2(x),
                "exp10" => rlibm::math::baselines::float32::exp10(x),
                "sinh" => rlibm::math::baselines::float32::sinh(x),
                "cosh" => rlibm::math::baselines::float32::cosh(x),
                "sinpi" => rlibm::math::baselines::float32::sinpi(x),
                "cospi" => rlibm::math::baselines::float32::cospi(x),
                _ => unreachable!(),
            },
            xs.iter().copied(),
        );
        total_wrong += report.wrong;
    }
    assert!(
        total_wrong > 0,
        "the float baseline must misround somewhere, or Table 1 is vacuous"
    );
}

/// The re-purposed double library fails on posit saturation exactly as
/// the paper's Table 2 describes.
#[test]
fn double_baseline_fails_posit_saturation() {
    // Overflow -> NaR (wrong: should saturate to maxpos).
    let big = Posit32::from_f64(800.0);
    assert!(rlibm::math::baselines::double64::to_posit32("exp", big).is_nar());
    assert_eq!(rlibm::math::eval_posit32_by_name("exp", big).expect("known name"), Posit32::MAXPOS);
    // Underflow -> 0 (wrong: should saturate to minpos).
    let neg = Posit32::from_f64(-800.0);
    assert!(rlibm::math::baselines::double64::to_posit32("exp", neg).is_zero());
    assert_eq!(rlibm::math::eval_posit32_by_name("exp", neg).expect("known name"), Posit32::MINPOS);
    // sinh and cosh share the failure.
    assert!(rlibm::math::baselines::double64::to_posit32("sinh", big).is_nar());
    assert!(rlibm::math::baselines::double64::to_posit32("cosh", big).is_nar());
}

/// Count how often the double model disagrees with the correct posit
/// result over the saturation band: it must be substantial (the paper
/// reports X(4.4E8) over 2^32 — about 10% of all patterns).
#[test]
fn double_baseline_posit_wrong_fraction_is_large() {
    let mut wrong = 0u32;
    let mut total = 0u32;
    // Sweep posits with scale >= 2^10 (values >= 2^10): exp saturates for
    // all of them; the double model overflows for values > ~709.
    for i in 0..2000u32 {
        let x = Posit32::from_f64(2f64.powi(10) * (1.0 + i as f64 / 100.0));
        let correct = rlibm::math::eval_posit32_by_name("exp", x).expect("known name");
        let naive = rlibm::math::baselines::double64::to_posit32("exp", x);
        total += 1;
        if naive != correct {
            wrong += 1;
        }
    }
    assert!(
        wrong > total / 2,
        "saturation-band failures should dominate: {wrong}/{total}"
    );
}

/// Our library and the oracle agree where the baselines disagree: the
/// contrast is real misrounding, not harness artifacts.
#[test]
fn disagreements_are_baseline_faults() {
    let xs = stratified_f32(if cfg!(debug_assertions) { 1 } else { 8 }, 99);
    let mut checked = 0;
    for &x in &xs {
        let base = rlibm::math::baselines::float32::exp10(x);
        let ours = rlibm::math::exp10(x);
        if base.to_bits() != ours.to_bits() && !base.is_nan() {
            let oracle: f32 = rlibm::mp::correctly_rounded(Func::Exp10, x);
            assert_eq!(
                ours.to_bits(),
                oracle.to_bits(),
                "our side of the disagreement at {x:e} must match the oracle"
            );
            checked += 1;
        }
    }
    // With any reasonable sample some disagreements exist.
    if !cfg!(debug_assertions) {
        assert!(checked > 0, "expected at least one disagreement to audit");
    }
}
