//! Delta tests for the per-tier runtime counters
//! (`runtime.tier.{prefix,full,dd}.*`), designed to run in BOTH build
//! configurations (see `tests/telemetry.rs` for the convention):
//! telemetry ON via any whole-workspace test run, telemetry OFF via
//! `cargo test -p rlibm`. ci.sh runs this file explicitly in both.
//!
//! The invariant under test: every call that enters a front end
//! in-domain ships from **exactly one** tier, so the three counter
//! deltas sum to the number of in-domain calls — scalar and batched
//! alike — and the dd tier stays equal to the fallback counter it
//! predates. With telemetry off, every counter must stay zero.

use rlibm_math::stats;
use rlibm_posit::Posit32;

const F32_FUNCS: [&str; 10] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];
const POSIT32_FUNCS: [&str; 8] = ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];

/// Deterministic in-domain workload: values in `(0.5, 2.0)`, never an
/// exact integer (sinpi/cospi short-circuit those before the tiers).
fn workload(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed | 1;
    let mut xs = Vec::with_capacity(n);
    while xs.len() < n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = 0.5 + 1.5 * ((state >> 11) as f64 / (1u64 << 53) as f64);
        let x = x as f32;
        if x.fract() != 0.0 && x > 0.5 {
            xs.push(x);
        }
    }
    xs
}

fn snapshot(slot: usize) -> (u64, u64, u64, u64) {
    (
        stats::tier_prefix(slot),
        stats::tier_full(slot),
        stats::tier_dd(slot),
        stats::fallbacks(slot),
    )
}

#[test]
fn scalar_calls_land_in_exactly_one_tier() {
    let xs = workload(0x5eed, 4_000);
    for name in F32_FUNCS {
        let slot = stats::f32_slot_by_name(name).expect("slot");
        let (p0, f0, d0, fb0) = snapshot(slot);
        for &x in &xs {
            let _ = rlibm_math::eval_f32_by_name(name, x).expect("known fn");
        }
        let (p1, f1, d1, fb1) = snapshot(slot);
        let (dp, df, dd) = (p1 - p0, f1 - f0, d1 - d0);
        if stats::enabled() {
            assert_eq!(
                dp + df + dd,
                xs.len() as u64,
                "{name}: every in-domain call ships from exactly one tier"
            );
            assert_eq!(dd, fb1 - fb0, "{name}: dd tier must equal the fallback counter");
            assert!(
                dp * 10 >= (xs.len() as u64) * 8,
                "{name}: prefix tier should carry >= 80% of a central workload, got {dp}/{}",
                xs.len()
            );
        } else {
            assert_eq!((dp, df, dd), (0, 0, 0), "{name}: telemetry off -> counters stay zero");
            assert_eq!(fb1, fb0);
        }
    }
}

#[test]
fn posit_calls_land_in_exactly_one_tier() {
    let xs = workload(0x9057, 2_000);
    for name in POSIT32_FUNCS {
        let slot = stats::posit32_slot_by_name(name).expect("slot");
        let (p0, f0, d0, fb0) = snapshot(slot);
        for &x in &xs {
            let p = Posit32::from_f64(x as f64);
            let _ = rlibm_math::eval_posit32_by_name(name, p).expect("known fn");
        }
        let (p1, f1, d1, fb1) = snapshot(slot);
        let (dp, df, dd) = (p1 - p0, f1 - f0, d1 - d0);
        if stats::enabled() {
            assert_eq!(dp + df + dd, xs.len() as u64, "{name}: one tier per posit call");
            assert_eq!(dd, fb1 - fb0, "{name}: dd tier == fallback counter");
        } else {
            assert_eq!((dp, df, dd), (0, 0, 0));
        }
    }
}

#[test]
fn batched_lanes_land_in_exactly_one_tier() {
    // 130 lanes = two full chunks + a partial one in the scalar slice
    // driver, and a partial SIMD chunk when the feature is on.
    let xs = workload(0xba7c4, 130);
    let mut out = vec![0.0f32; xs.len()];
    for name in F32_FUNCS {
        let slot = stats::f32_slot_by_name(name).expect("slot");
        let (p0, f0, d0, _) = snapshot(slot);
        rlibm_math::eval_slice_f32(name, &xs, &mut out).expect("known fn");
        let (p1, f1, d1, _) = snapshot(slot);
        let (dp, df, dd) = (p1 - p0, f1 - f0, d1 - d0);
        if stats::enabled() {
            assert_eq!(
                dp + df + dd,
                xs.len() as u64,
                "{name}: batched lanes must tier-account exactly once each"
            );
        } else {
            assert_eq!((dp, df, dd), (0, 0, 0));
        }
        // Tier accounting must never change an output bit: the batched
        // results match the scalar front end exactly.
        let scalar = rlibm_math::f32_fn_by_name(name).expect("known fn");
        for (&x, &y) in xs.iter().zip(&out) {
            assert_eq!(y.to_bits(), scalar(x).to_bits(), "{name}({x:e})");
        }
    }
}
