//! Satellite: the full special-value matrix through every public entry
//! point — scalar two-tier (`fast`), dd-only (`*_dd`), and the batched
//! slice API — asserting no panic and correct special semantics.
//!
//! The three entry points must agree bit-for-bit on every special (they
//! are documented as bit-identical), and the specials themselves must
//! follow IEEE/posit conventions: NaN propagates (any payload), signed
//! zeros and infinities map per function family, posit NaR is absorbing.

use rlibm::posit::Posit32;

const F32_FUNCS: [&str; 10] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];
const P32_FUNCS: [&str; 8] = ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];

/// NaN payload variants, ±0, ±inf, subnormal boundaries, normal
/// boundaries, and near-domain-edge magnitudes.
fn f32_special_matrix() -> Vec<f32> {
    vec![
        f32::NAN,
        f32::from_bits(0x7FC0_0001), // quiet NaN, low payload bit
        f32::from_bits(0x7FFF_FFFF), // quiet NaN, all-ones payload
        f32::from_bits(0xFFC0_0000), // negative quiet NaN
        f32::from_bits(0x7F80_0001), // signalling NaN
        f32::from_bits(0xFF80_0001), // negative signalling NaN
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::from_bits(1),           // smallest positive subnormal
        f32::from_bits(0x8000_0001), // smallest negative subnormal
        f32::from_bits(0x007F_FFFF), // largest subnormal
        f32::from_bits(0x807F_FFFF),
        f32::MIN_POSITIVE,           // smallest normal
        -f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        1.0,
        -1.0,
        0.5,
        2.5, // sinpi/cospi half-integer exact case
        88.72283,   // just under exp overflow
        88.722855,  // just over
        -87.33655,  // exp underflow edge
        128.0,      // exp2 overflow
        -149.0,     // exp2 subnormal output
        38.53184,   // exp10 overflow edge
        -45.0,
        89.0, 90.0, -89.0, -90.0, // sinh/cosh saturation band
        8_388_608.0,   // 2^23: sinpi integer threshold
        16_777_216.0,  // 2^24
        -8_388_609.0,
    ]
}

#[test]
fn f32_specials_agree_across_all_entry_points() {
    let xs = f32_special_matrix();
    let mut slice_out = vec![0.0f32; xs.len()];
    for name in F32_FUNCS {
        let fast = rlibm::math::f32_fn_by_name(name).expect("known name");
        let dd = rlibm::math::f32_dd_fn_by_name(name).expect("known name");
        rlibm::math::eval_slice_f32(name, &xs, &mut slice_out).expect("known name");
        for (&x, &via_slice) in xs.iter().zip(slice_out.iter()) {
            let via_fast = fast(x);
            let via_dd = dd(x);
            let same = |a: f32, b: f32| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan());
            assert!(
                same(via_fast, via_dd),
                "{name}({x:e} = {:#010x}): fast {via_fast:e} != dd {via_dd:e}",
                x.to_bits()
            );
            assert!(
                same(via_fast, via_slice),
                "{name}({x:e}): fast {via_fast:e} != slice {via_slice:e}"
            );
        }
    }
}

#[test]
fn f32_nan_propagates_for_every_payload() {
    let nans = [
        f32::NAN,
        f32::from_bits(0x7FC0_0001),
        f32::from_bits(0x7FFF_FFFF),
        f32::from_bits(0xFFC0_0000),
        f32::from_bits(0x7F80_0001),
        f32::from_bits(0xFF80_0001),
    ];
    for name in F32_FUNCS {
        let fast = rlibm::math::f32_fn_by_name(name).expect("known name");
        for &x in &nans {
            assert!(fast(x).is_nan(), "{name}(NaN {:#010x}) must be NaN", x.to_bits());
        }
    }
}

#[test]
fn f32_infinity_and_zero_semantics() {
    use rlibm::math as m;
    let inf = f32::INFINITY;
    // exp family: e^inf = inf, e^-inf = +0, f(0) = 1 exactly.
    for name in ["exp", "exp2", "exp10"] {
        let f = m::f32_fn_by_name(name).expect("known");
        assert_eq!(f(inf), inf, "{name}");
        assert_eq!(f(-inf).to_bits(), 0.0f32.to_bits(), "{name}(-inf) must be +0");
        assert_eq!(f(0.0), 1.0, "{name}(0)");
        assert_eq!(f(-0.0), 1.0, "{name}(-0)");
    }
    // log family: f(inf) = inf, f(+0) = f(-0) = -inf, f(x<0) = NaN.
    for name in ["ln", "log2", "log10"] {
        let f = m::f32_fn_by_name(name).expect("known");
        assert_eq!(f(inf), inf, "{name}");
        assert_eq!(f(0.0), -inf, "{name}(+0)");
        assert_eq!(f(-0.0), -inf, "{name}(-0)");
        assert!(f(-1.0).is_nan(), "{name}(-1) must be NaN");
        assert!(f(-inf).is_nan(), "{name}(-inf) must be NaN");
    }
    // sinh: odd, ±inf -> ±inf, ±0 -> ±0. cosh: even, ±inf -> +inf, ±0 -> 1.
    let sinh = m::f32_fn_by_name("sinh").expect("known");
    assert_eq!(sinh(inf), inf);
    assert_eq!(sinh(-inf), -inf);
    assert_eq!(sinh(0.0).to_bits(), 0.0f32.to_bits());
    assert_eq!(sinh(-0.0).to_bits(), (-0.0f32).to_bits(), "sinh(-0) must be -0");
    let cosh = m::f32_fn_by_name("cosh").expect("known");
    assert_eq!(cosh(inf), inf);
    assert_eq!(cosh(-inf), inf);
    assert_eq!(cosh(0.0), 1.0);
    assert_eq!(cosh(-0.0), 1.0);
    // sinpi/cospi: NaN at ±inf; sinpi(±0) = ±0; cospi(±0) = 1.
    let sinpi = m::f32_fn_by_name("sinpi").expect("known");
    let cospi = m::f32_fn_by_name("cospi").expect("known");
    assert!(sinpi(inf).is_nan());
    assert!(sinpi(-inf).is_nan());
    assert!(cospi(inf).is_nan());
    assert!(cospi(-inf).is_nan());
    assert_eq!(sinpi(0.0).to_bits(), 0.0f32.to_bits());
    assert_eq!(sinpi(-0.0).to_bits(), (-0.0f32).to_bits(), "sinpi(-0) must be -0");
    assert_eq!(cospi(0.0), 1.0);
    assert_eq!(cospi(-0.0), 1.0);
}

#[test]
fn f32_subnormal_boundaries_are_finite_and_consistent() {
    // Subnormal inputs must not panic anywhere and must round-trip the
    // two-tier identity; outputs at the subnormal output boundary (e.g.
    // exp2(-149)) must be handled by both tiers identically (checked in
    // f32_specials_agree_across_all_entry_points); here: basic sanity.
    let subs = [
        f32::from_bits(1),
        f32::from_bits(0x007F_FFFF),
        f32::MIN_POSITIVE,
        -f32::from_bits(1),
    ];
    for &x in &subs {
        // ln(tiny) is a large negative number, never NaN/inf for x > 0.
        if x > 0.0 {
            let y = rlibm::math::ln(x);
            assert!(y.is_finite() && y < -80.0, "ln({x:e}) = {y}");
        }
        assert_eq!(rlibm::math::exp(x) , 1.0, "exp(subnormal) rounds to 1");
        // sinh(x) ~ x for tiny x: exact at subnormal scale.
        assert_eq!(rlibm::math::sinh(x).to_bits(), x.to_bits(), "sinh(tiny) == tiny");
        assert_eq!(rlibm::math::cosh(x), 1.0);
        assert_eq!(rlibm::math::sinpi(x).to_bits(), (core::f32::consts::PI * x).to_bits());
        assert_eq!(rlibm::math::cospi(x), 1.0);
    }
}

fn posit_special_matrix() -> Vec<Posit32> {
    vec![
        Posit32::NAR,
        Posit32::ZERO,
        Posit32::MINPOS,
        Posit32::MAXPOS,
        Posit32::from_bits(Posit32::MAXPOS.to_bits().wrapping_neg()), // -maxpos
        Posit32::from_bits(Posit32::MINPOS.to_bits().wrapping_neg()), // -minpos
        Posit32::ONE,
        Posit32::from_f64(-1.0),
        Posit32::from_f64(83.0),  // just under exp saturation
        Posit32::from_f64(84.0),  // just over
        Posit32::from_f64(-84.0),
        Posit32::from_f64(120.0), // exp2 saturation band
        Posit32::from_f64(121.0),
        Posit32::from_f64(36.0),  // exp10 saturation band
        Posit32::from_f64(37.0),
        Posit32::from_f64(0.5),
        Posit32::from_f64(2.0),
    ]
}

#[test]
fn posit32_specials_agree_across_all_entry_points() {
    let xs = posit_special_matrix();
    let mut slice_out = vec![Posit32::ZERO; xs.len()];
    for name in P32_FUNCS {
        let fast = rlibm::math::posit32_fn_by_name(name).expect("known name");
        let dd = rlibm::math::posit32_dd_fn_by_name(name).expect("known name");
        rlibm::math::eval_slice_posit32(name, &xs, &mut slice_out).expect("known name");
        for (&x, &via_slice) in xs.iter().zip(slice_out.iter()) {
            let via_fast = fast(x);
            let via_dd = dd(x);
            assert_eq!(via_fast, via_dd, "{name}({:#010x}): fast != dd", x.to_bits());
            assert_eq!(via_fast, via_slice, "{name}({:#010x}): fast != slice", x.to_bits());
        }
    }
}

#[test]
fn posit32_nar_is_absorbing_and_saturation_is_correct() {
    for name in P32_FUNCS {
        let f = rlibm::math::posit32_fn_by_name(name).expect("known name");
        assert!(f(Posit32::NAR).is_nar(), "{name}(NaR) must be NaR");
    }
    // Log family: zero and negatives have no posit result -> NaR.
    for name in ["ln", "log2", "log10"] {
        let f = rlibm::math::posit32_fn_by_name(name).expect("known name");
        assert!(f(Posit32::ZERO).is_nar(), "{name}(0) must be NaR");
        assert!(f(Posit32::from_f64(-2.0)).is_nar(), "{name}(-2) must be NaR");
    }
    // Exp family: posits never overflow — saturate at maxpos/minpos.
    let exp = rlibm::math::posit32_fn_by_name("exp").expect("known name");
    assert_eq!(exp(Posit32::MAXPOS), Posit32::MAXPOS, "exp(maxpos) saturates");
    assert_eq!(
        exp(Posit32::from_bits(Posit32::MAXPOS.to_bits().wrapping_neg())),
        Posit32::MINPOS,
        "exp(-maxpos) saturates at minpos, not zero"
    );
    assert_eq!(exp(Posit32::ZERO), Posit32::ONE);
    // cosh lower bound: cosh(x) >= 1, and cosh(0) = 1 exactly.
    let cosh = rlibm::math::posit32_fn_by_name("cosh").expect("known name");
    assert_eq!(cosh(Posit32::ZERO), Posit32::ONE);
}
