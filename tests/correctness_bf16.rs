//! EXHAUSTIVE correctness for the bfloat16 library: every one of the
//! 65 536 bit patterns, all eight functions, against the oracle. This is
//! the paper's "correctly rounded for all inputs" property demonstrated
//! on a complete input domain (release builds; debug builds stride).

use rlibm::fp::BFloat16;
use rlibm::gen::validate::validate;
use rlibm::mp::Func;

fn inputs() -> Box<dyn Iterator<Item = BFloat16>> {
    if cfg!(debug_assertions) {
        Box::new((0..=u16::MAX).step_by(23).map(BFloat16::from_bits))
    } else {
        Box::new((0..=u16::MAX).map(BFloat16::from_bits))
    }
}

fn check_exhaustive(f: Func) {
    let report = validate(
        f,
        |x: BFloat16| rlibm::math::eval_bf16_by_name(f.name(), x).expect("known name"),
        inputs(),
    );
    assert!(
        report.all_correct(),
        "{}: {} of {} wrong; first: {:?}",
        f.name(),
        report.wrong,
        report.total,
        report.examples.first()
    );
    if !cfg!(debug_assertions) {
        assert_eq!(report.total, 65_536, "must cover every bit pattern");
    }
}

#[test]
fn bf16_ln_all_inputs() {
    check_exhaustive(Func::Ln);
}

#[test]
fn bf16_log2_all_inputs() {
    check_exhaustive(Func::Log2);
}

#[test]
fn bf16_log10_all_inputs() {
    check_exhaustive(Func::Log10);
}

#[test]
fn bf16_exp_all_inputs() {
    check_exhaustive(Func::Exp);
}

#[test]
fn bf16_exp2_all_inputs() {
    check_exhaustive(Func::Exp2);
}

#[test]
fn bf16_exp10_all_inputs() {
    check_exhaustive(Func::Exp10);
}

#[test]
fn bf16_sinh_all_inputs() {
    check_exhaustive(Func::Sinh);
}

#[test]
fn bf16_cosh_all_inputs() {
    check_exhaustive(Func::Cosh);
}
