//! Exhaustive correctness for the other two 16-bit targets: IEEE binary16
//! and posit16 (the original RLIBM's posit target). Together with
//! `correctness_bf16.rs` this validates the "all inputs" property over
//! three complete 16-bit domains x 8 functions.

use rlibm::fp::Half;
use rlibm::gen::validate::validate;
use rlibm::mp::Func;
use rlibm::posit::Posit16;

fn step() -> usize {
    if cfg!(debug_assertions) {
        29
    } else {
        1
    }
}

fn check_half(f: Func) {
    let report = validate(
        f,
        |x: Half| rlibm::math::eval_half_by_name(f.name(), x).expect("known name"),
        (0..=u16::MAX).step_by(step()).map(Half::from_bits),
    );
    assert!(
        report.all_correct(),
        "binary16 {}: {} of {} wrong; first {:?}",
        f.name(),
        report.wrong,
        report.total,
        report.examples.first()
    );
}

fn check_posit16(f: Func) {
    let report = validate(
        f,
        |x: Posit16| rlibm::math::eval_posit16_by_name(f.name(), x).expect("known name"),
        (0..=u16::MAX).step_by(step()).map(Posit16::from_bits),
    );
    assert!(
        report.all_correct(),
        "posit16 {}: {} of {} wrong; first {:?}",
        f.name(),
        report.wrong,
        report.total,
        report.examples.first()
    );
}

#[test]
fn half_ln_all_inputs() {
    check_half(Func::Ln);
}

#[test]
fn half_log2_all_inputs() {
    check_half(Func::Log2);
}

#[test]
fn half_log10_all_inputs() {
    check_half(Func::Log10);
}

#[test]
fn half_exp_all_inputs() {
    check_half(Func::Exp);
}

#[test]
fn half_exp2_all_inputs() {
    check_half(Func::Exp2);
}

#[test]
fn half_exp10_all_inputs() {
    check_half(Func::Exp10);
}

#[test]
fn half_sinh_all_inputs() {
    check_half(Func::Sinh);
}

#[test]
fn half_cosh_all_inputs() {
    check_half(Func::Cosh);
}

#[test]
fn posit16_ln_all_inputs() {
    check_posit16(Func::Ln);
}

#[test]
fn posit16_log2_all_inputs() {
    check_posit16(Func::Log2);
}

#[test]
fn posit16_log10_all_inputs() {
    check_posit16(Func::Log10);
}

#[test]
fn posit16_exp_all_inputs() {
    check_posit16(Func::Exp);
}

#[test]
fn posit16_exp2_all_inputs() {
    check_posit16(Func::Exp2);
}

#[test]
fn posit16_exp10_all_inputs() {
    check_posit16(Func::Exp10);
}

#[test]
fn posit16_sinh_all_inputs() {
    check_posit16(Func::Sinh);
}

#[test]
fn posit16_cosh_all_inputs() {
    check_posit16(Func::Cosh);
}
