//! Differential tests for the generator-hot-path bignum optimizations.
//!
//! PR 5 gave `BigUint` an inline 0–2-limb representation with Karatsuba
//! multiplication above a limb threshold, and made `Rational` defer gcd
//! normalization (see DESIGN.md "Generator performance"). Both changes
//! must be *representation-only*: every operation must produce the same
//! value as the schoolbook/eager code they replaced. These sweeps pin
//! that equivalence against independent references built purely from
//! public single-limb primitives (`mul_u64` + `shl` + `add`) and `u128`
//! machine arithmetic, concentrating samples on the edges where the new
//! code switches strategy: the 1→2-limb and 2→3-limb (inline→heap)
//! boundaries and the Karatsuba threshold (32 limbs per side).

use rlibm::fp::rng::XorShift64;
use rlibm::mp::{BigInt, BigUint, Rational};

const CASES: usize = 1024;

/// Schoolbook product via public single-limb primitives only:
/// `a * b = Σ_i a.mul_u64(b_i) << 64i`. `mul_u64` is a single carry
/// chain, so this reference never enters the multi-limb (inline-u128 or
/// Karatsuba) paths under test.
fn mul_reference(a: &BigUint, b_limbs: &[u64]) -> BigUint {
    let mut acc = BigUint::zero();
    for (i, &l) in b_limbs.iter().enumerate() {
        acc = acc.add(&a.mul_u64(l).shl(64 * i as u64));
    }
    acc
}

/// Builds a value from little-endian limbs through `from_u64`/`shl`/`add`.
fn from_limbs(limbs: &[u64]) -> BigUint {
    mul_reference(&BigUint::one(), limbs)
}

/// Draws a `u128` whose limb count (0, 1 or 2) is chosen uniformly, with
/// extra mass on the exact boundary patterns `2^64 ± k` and `2^128 - k`.
fn stratified_u128(rng: &mut XorShift64) -> u128 {
    match rng.next_u64() % 8 {
        0 => 0,
        1 => rng.next_u64() as u128,                       // 1 limb
        2 => (rng.next_u64() % 16) as u128,                // tiny
        3 => (1u128 << 64) - 1 - (rng.next_u64() % 4) as u128, // top of 1 limb
        4 => (1u128 << 64) + (rng.next_u64() % 4) as u128, // bottom of 2 limbs
        5 => u128::MAX - (rng.next_u64() % 4) as u128,     // top of 2 limbs
        _ => (rng.next_u64() as u128) << 64 | rng.next_u64() as u128,
    }
}

/// Inline-path multiplication (0–2 limbs per operand, where the new code
/// runs entirely in `u128` scratch) against the single-limb schoolbook
/// reference, sweeping the 1–2-limb and inline→heap boundaries.
#[test]
fn inline_mul_matches_single_limb_schoolbook() {
    let mut rng = XorShift64::new(0x5EED_D1FF_0001);
    for _ in 0..CASES {
        let a = stratified_u128(&mut rng);
        let b = stratified_u128(&mut rng);
        let ba = BigUint::from_u128(a);
        let got = ba.mul(&BigUint::from_u128(b));
        let want = mul_reference(&ba, &[b as u64, (b >> 64) as u64]);
        assert_eq!(got, want, "{a:#x} * {b:#x}");
        // When the product fits in machine u128, it must also agree with
        // machine arithmetic exactly.
        if let Some(p) = a.checked_mul(b) {
            assert_eq!(got, BigUint::from_u128(p), "{a:#x} * {b:#x}");
        }
    }
}

/// Inline-path add/sub against machine `u128` arithmetic on the same
/// stratified boundary values.
#[test]
fn inline_add_sub_match_u128() {
    let mut rng = XorShift64::new(0x5EED_D1FF_0002);
    for _ in 0..CASES {
        let a = stratified_u128(&mut rng);
        let b = stratified_u128(&mut rng);
        let (ba, bb) = (BigUint::from_u128(a), BigUint::from_u128(b));
        if let Some(s) = a.checked_add(b) {
            assert_eq!(ba.add(&bb), BigUint::from_u128(s), "{a:#x} + {b:#x}");
        } else {
            // Carry out of two limbs: check against the limb reference.
            let s = a.wrapping_add(b);
            let want = from_limbs(&[s as u64, (s >> 64) as u64, 1]);
            assert_eq!(ba.add(&bb), want, "{a:#x} + {b:#x} (carry)");
        }
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let (bhi, blo) = (BigUint::from_u128(hi), BigUint::from_u128(lo));
        assert_eq!(bhi.sub(&blo), BigUint::from_u128(hi - lo), "{hi:#x} - {lo:#x}");
    }
}

/// Multi-limb multiplication across the Karatsuba threshold (32 limbs per
/// side) against the single-limb schoolbook reference. Sizes straddle the
/// cutoff from both sides, including asymmetric shapes where only the
/// shorter operand decides the strategy.
#[test]
fn karatsuba_matches_single_limb_schoolbook() {
    let mut rng = XorShift64::new(0x5EED_D1FF_0003);
    // (len_a, len_b) pairs around the 32-limb threshold; strictly-below
    // shapes pin the schoolbook side of the dispatch too.
    let shapes = [
        (3usize, 3usize),
        (16, 31),
        (31, 31),
        (31, 32),
        (32, 32),
        (32, 33),
        (33, 33),
        (33, 64),
        (40, 65),
        (64, 64),
    ];
    for &(la, lb) in &shapes {
        for _ in 0..6 {
            let mut limbs_a: Vec<u64> = (0..la).map(|_| rng.next_u64()).collect();
            let mut limbs_b: Vec<u64> = (0..lb).map(|_| rng.next_u64()).collect();
            // Occasionally zero runs to exercise carry/normalization edges.
            if rng.next_u64().is_multiple_of(3) {
                for l in limbs_a.iter_mut().take(la / 2) {
                    *l = 0;
                }
            }
            if rng.next_u64().is_multiple_of(3) {
                for l in limbs_b.iter_mut().skip(lb / 2) {
                    *l = u64::MAX;
                }
            }
            let a = from_limbs(&limbs_a);
            let b = from_limbs(&limbs_b);
            let got = a.mul(&b);
            assert_eq!(got, mul_reference(&a, &limbs_b), "shape {la}x{lb}");
            assert_eq!(got, b.mul(&a), "commutativity {la}x{lb}");
            // Division must invert the product exactly.
            if !a.is_zero() {
                let (q, r) = got.div_rem(&a);
                assert_eq!(q, b, "quotient {la}x{lb}");
                assert!(r.is_zero(), "remainder {la}x{lb}");
            }
        }
    }
}

/// An exact eagerly-reduced fraction over `i128`, the independent
/// reference for the lazy-gcd `Rational`.
#[derive(Clone, Copy)]
struct EagerFrac {
    num: i128,
    den: i128, // > 0
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.abs().max(1)
}

impl EagerFrac {
    fn new(num: i128, den: i128) -> EagerFrac {
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd_i128(num, den);
        EagerFrac { num: num / g, den: den / g }
    }

    /// `true` when any intermediate of `self op other` could overflow the
    /// i128 reference (conservative bit-length bound).
    fn would_overflow(&self, other: &EagerFrac) -> bool {
        let bits = |x: i128| 128 - x.unsigned_abs().leading_zeros();
        bits(self.num).max(bits(self.den)) + bits(other.num).max(bits(other.den)) > 120
    }

    fn to_rational(self) -> Rational {
        let neg = self.num < 0;
        Rational::new(
            BigInt::from_biguint(neg, BigUint::from_u128(self.num.unsigned_abs())),
            BigUint::from_u128(self.den as u128),
        )
    }
}

/// Long random op chains through the lazy-gcd `Rational` against the
/// eagerly reduced `i128` fraction: every intermediate must be value-equal
/// (`==`, `cmp`, hash, `to_f64`), and canonicalization must recover the
/// reduced components exactly.
#[test]
fn lazy_rational_chain_matches_eager_reference() {
    use core::hash::{Hash, Hasher};
    let mut rng = XorShift64::new(0x5EED_D1FF_0004);
    for _ in 0..256 {
        let mut eager = EagerFrac::new(rng.uniform_i64(-999, 999) as i128, 1);
        let mut lazy = eager.to_rational();
        for _ in 0..12 {
            let op_num = rng.uniform_i64(-999, 999);
            let op_den = rng.uniform_i64(1, 999);
            let rhs_eager = EagerFrac::new(op_num as i128, op_den as i128);
            if eager.would_overflow(&rhs_eager) {
                // Reference would overflow i128: restart the chain here.
                eager = rhs_eager;
                lazy = eager.to_rational();
                continue;
            }
            let rhs_lazy = Rational::from_ratio_i64(op_num, op_den);
            match rng.next_u64() % 4 {
                0 => {
                    eager = EagerFrac::new(
                        eager.num * rhs_eager.den + rhs_eager.num * eager.den,
                        eager.den * rhs_eager.den,
                    );
                    lazy = lazy.add(&rhs_lazy);
                }
                1 => {
                    eager = EagerFrac::new(
                        eager.num * rhs_eager.den - rhs_eager.num * eager.den,
                        eager.den * rhs_eager.den,
                    );
                    lazy = lazy.sub(&rhs_lazy);
                }
                2 => {
                    eager = EagerFrac::new(
                        eager.num * rhs_eager.num,
                        eager.den * rhs_eager.den,
                    );
                    lazy = lazy.mul(&rhs_lazy);
                }
                _ => {
                    if rhs_eager.num == 0 {
                        continue;
                    }
                    eager = EagerFrac::new(
                        eager.num * rhs_eager.den,
                        eager.den * rhs_eager.num,
                    );
                    lazy = lazy.div(&rhs_lazy);
                }
            }
            let want = eager.to_rational();
            assert_eq!(lazy, want);
            assert_eq!(lazy.cmp(&want), core::cmp::Ordering::Equal);
            assert_eq!(lazy.to_f64(), want.to_f64());
            assert_eq!(lazy.is_zero(), eager.num == 0);
            assert_eq!(lazy.signum(), eager.num.signum() as i32);
            let (mut h1, mut h2) = (
                std::collections::hash_map::DefaultHasher::new(),
                std::collections::hash_map::DefaultHasher::new(),
            );
            lazy.hash(&mut h1);
            want.hash(&mut h2);
            assert_eq!(h1.finish(), h2.finish(), "lazy/eager hash split");
        }
        // Canonicalization must land on exactly the eager components.
        lazy.canonicalize();
        assert_eq!(
            lazy.numer().magnitude(),
            &BigUint::from_u128(eager.num.unsigned_abs())
        );
        assert_eq!(lazy.denom(), &BigUint::from_u128(eager.den as u128));
    }
}

/// Ordering between lazily produced values must match the eager reference
/// even when both sides are stored unreduced.
#[test]
fn lazy_rational_ordering_is_representation_invariant() {
    let mut rng = XorShift64::new(0x5EED_D1FF_0005);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            rng.uniform_i64(-500, 500),
            rng.uniform_i64(1, 500),
            rng.uniform_i64(-500, 500),
            rng.uniform_i64(1, 500),
        );
        // Build each value twice: canonical, and via an unreduced detour
        // (multiply and divide by the same junk factor).
        let junk = Rational::from_ratio_i64(rng.uniform_i64(1, 97), 1);
        let x_canon = Rational::from_ratio_i64(a, b);
        let x_lazy = x_canon.mul(&junk).div(&junk);
        let y_canon = Rational::from_ratio_i64(c, d);
        let y_lazy = y_canon.mul(&junk).div(&junk);
        assert_eq!(x_lazy, x_canon);
        assert_eq!(y_lazy, y_canon);
        assert_eq!(x_lazy.cmp(&y_lazy), x_canon.cmp(&y_canon));
        // Machine-rational cross-check of the ordering itself.
        assert_eq!(
            x_canon.cmp(&y_canon),
            (a as i128 * d as i128).cmp(&(c as i128 * b as i128))
        );
    }
}
