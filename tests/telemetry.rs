//! Telemetry correctness tests, designed to run in BOTH build
//! configurations:
//!
//! * telemetry ON — any whole-workspace `cargo test` (feature
//!   unification with `rlibm-bench`, which hard-enables the telemetry
//!   features for its harnesses);
//! * telemetry OFF — `cargo test -p rlibm` with default features (the
//!   configuration ci.sh runs as the zero-cost check).
//!
//! Every assertion branches on [`rlibm::obs::enabled`], and the
//! output-checksum test pins the runtime library's results to the same
//! constant in both configurations: instrumentation must never change a
//! single output bit.
//!
//! None of these tests call `reset_all()`: the test binary runs
//! concurrently and other tests record into the same process-wide
//! registry, so tests only assert on metric *deltas* or on their own
//! private metric statics.

use rlibm::gen::par::run_chunked;
use rlibm::obs::{span_depth, Counter, Histogram, SpanTimer};
use rlibm_fp::rng::{draw_biased_f32, XorShift64};

const F32_FUNCS: [&str; 10] =
    ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh", "sinpi", "cospi"];
const POSIT32_FUNCS: [&str; 8] = ["ln", "log2", "log10", "exp", "exp2", "exp10", "sinh", "cosh"];

#[test]
fn concurrent_counter_adds_are_not_lost() {
    static C: Counter = Counter::new("test.telemetry.concurrent_counter");
    let per_chunk = 10_000u64;
    let chunks = 64usize;
    let results = run_chunked(chunks, 1, 8, |_, range| {
        for _ in range {
            for _ in 0..per_chunk {
                C.add(1);
            }
        }
        per_chunk
    });
    assert_eq!(results.len(), chunks);
    if rlibm::obs::enabled() {
        assert_eq!(C.get(), per_chunk * chunks as u64, "relaxed adds must all land");
    } else {
        assert_eq!(C.get(), 0, "telemetry off: counters stay zero");
    }
}

#[test]
fn concurrent_histogram_matches_serial_reference() {
    static H: Histogram = Histogram::new("test.telemetry.concurrent_hist");
    // Each chunk records a deterministic value stream; the parallel sums
    // must equal the serially computed expectation.
    let chunks = 32usize;
    let per_chunk = 5_000u64;
    let sample = |chunk: usize, i: u64| (chunk as u64).wrapping_mul(31) + i % 257;
    run_chunked(chunks, 1, 8, |_, range| {
        for k in range {
            for i in 0..per_chunk {
                H.record(sample(k, i));
            }
        }
    });
    let (mut want_count, mut want_sum) = (0u64, 0u64);
    for k in 0..chunks {
        for i in 0..per_chunk {
            want_count += 1;
            want_sum += sample(k, i);
        }
    }
    if rlibm::obs::enabled() {
        assert_eq!(H.count(), want_count);
        assert_eq!(H.sum(), want_sum);
        let bucket_total: u64 = H.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, want_count, "bucket counts reconcile with the total");
    } else {
        assert_eq!(H.count(), 0);
        assert_eq!(H.sum(), 0);
    }
}

/// Hammer the trace rings from many threads, then check every visible
/// record for tearing: each event's payload is a pure function of its
/// tag, so a snapshot that interleaved halves of two records would show
/// a mismatch. Rings are bounded — old events are overwritten, never
/// torn, and the visible total can't exceed the pool capacity.
///
/// Writes through the public `emit` path with a private marker byte;
/// no `reset_all()` (the registry is shared with the other tests), so
/// the assertions only touch records carrying the marker.
#[test]
fn concurrent_ring_writes_are_never_torn() {
    use rlibm::obs::trace::{self, TraceKind, MAX_RINGS, RING_CAP};
    const MARKER: u8 = 0x7F;
    let chunks = 16usize;
    let per_chunk = 4 * RING_CAP as u64; // several wraps per ring
    run_chunked(chunks, 1, 8, |_, range| {
        for k in range {
            for i in 0..per_chunk {
                let tag = ((k as u64) << 32) | i;
                trace::emit(TraceKind::Complete, MARKER, tag, trace::mix64(tag) as u32);
            }
        }
    });
    let rings = trace::snapshot_rings();
    if !rlibm::obs::enabled() {
        assert!(rings.is_empty(), "telemetry off: no rings");
        return;
    }
    let mut seen = 0usize;
    for t in &rings {
        assert!(t.events.len() <= RING_CAP, "ring over capacity");
        for e in &t.events {
            if e.aux != MARKER {
                continue; // another test's events in a reused ring
            }
            seen += 1;
            assert_eq!(
                e.payload,
                trace::mix64(e.tag) as u32,
                "torn record: payload does not match its tag"
            );
            assert_eq!(e.kind, TraceKind::Complete);
        }
    }
    assert!(seen > 0, "snapshot must surface marked events");
    assert!(seen <= MAX_RINGS * RING_CAP, "visible events exceed pool capacity");
}

#[test]
fn span_nesting_tracks_depth_and_counts_closures() {
    static OUTER: SpanTimer = SpanTimer::new("test.telemetry.span_outer");
    static INNER: SpanTimer = SpanTimer::new("test.telemetry.span_inner");
    let c0 = OUTER.count();
    let base = span_depth();
    {
        let _o = OUTER.start();
        if rlibm::obs::enabled() {
            assert_eq!(span_depth(), base + 1);
        }
        {
            let _i = INNER.start();
            if rlibm::obs::enabled() {
                assert_eq!(span_depth(), base + 2);
            }
        }
        if rlibm::obs::enabled() {
            assert_eq!(span_depth(), base + 1);
        }
    }
    assert_eq!(span_depth(), base, "guards restore the depth on drop");
    if rlibm::obs::enabled() {
        assert_eq!(OUTER.count(), c0 + 1, "one completed outer span");
        assert!(INNER.count() >= 1);
    } else {
        assert_eq!(OUTER.count(), 0);
    }
}

/// FNV-1a over the runtime library's outputs on a fixed biased sweep.
fn runtime_output_checksum() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (i, name) in F32_FUNCS.iter().enumerate() {
        let f = rlibm::math::f32_fn_by_name(name).expect("known name");
        let mut rng = XorShift64::new(0xC0FFEE ^ (i as u64));
        for _ in 0..10_000 {
            mix(f(draw_biased_f32(&mut rng, name)).to_bits());
        }
    }
    for (i, name) in POSIT32_FUNCS.iter().enumerate() {
        let f = rlibm::math::posit32_fn_by_name(name).expect("known name");
        let mut rng = XorShift64::new(0xBADCAB ^ (i as u64));
        for _ in 0..10_000 {
            mix(f(rlibm::posit::Posit32::from_bits(rng.next_u32())).to_bits());
        }
    }
    h
}

/// The checksum constant both build configurations must reproduce. If
/// this test fails only in telemetry builds, instrumentation has leaked
/// into a result; if it fails in both, the kernels themselves changed
/// (then re-pin after re-certifying correctness).
#[test]
fn instrumentation_never_changes_an_output_bit() {
    assert_eq!(runtime_output_checksum(), 0x67f0_f69c_f718_15ea);
}

/// The posit batched entry records its own slice counters
/// (`runtime.slice.posit32.{chunks,requests}`), so serving-layer posit
/// traffic is visible in TELEM snapshots alongside the f32 slice
/// counters. Delta-based: other tests share the process registry.
#[test]
fn posit_slice_counters_track_chunks_and_requests() {
    use rlibm::posit::Posit32;
    rlibm::math::stats::register_all();
    let read = |name: &str| {
        rlibm::obs::snapshot()
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let chunks0 = read("runtime.slice.posit32.chunks");
    let requests0 = read("runtime.slice.posit32.requests");
    // 130 lanes = 3 chunks (64 + 64 + 2).
    let xs: Vec<Posit32> = (0..130).map(|i| Posit32::from_f64(0.1 + f64::from(i))).collect();
    let mut out = vec![Posit32::ZERO; xs.len()];
    rlibm::math::eval_slice_posit32("exp", &xs, &mut out).expect("known name");
    if rlibm::obs::enabled() {
        assert_eq!(read("runtime.slice.posit32.chunks") - chunks0, 3);
        assert_eq!(read("runtime.slice.posit32.requests") - requests0, 130);
    } else {
        assert_eq!(read("runtime.slice.posit32.chunks"), 0);
        assert_eq!(read("runtime.slice.posit32.requests"), 0);
    }
}

#[test]
fn snapshot_carries_all_runtime_fallback_counters() {
    rlibm::math::stats::register_all();
    let snap = rlibm::obs::snapshot();
    let fallback_names: Vec<&str> = snap
        .counters
        .iter()
        .map(|c| c.name)
        .filter(|n| n.starts_with("runtime.fallback."))
        .collect();
    if rlibm::obs::enabled() {
        assert_eq!(fallback_names.len(), 18, "10 f32 + 8 posit32 slots: {fallback_names:?}");
        for name in F32_FUNCS {
            assert!(fallback_names.contains(&format!("runtime.fallback.f32.{name}").as_str()));
        }
        for name in POSIT32_FUNCS {
            assert!(fallback_names
                .contains(&format!("runtime.fallback.posit32.{name}").as_str()));
        }
    } else {
        assert!(snap.counters.is_empty(), "telemetry off: empty snapshot");
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }
}
