//! Cross-crate correctness: the shipped `f32` library vs the
//! multi-precision oracle, over stratified samples covering every
//! exponent bucket of both signs (Table 1's RLIBM-32 column).
//!
//! Sample sizes scale down in debug builds (the oracle is ~40x slower
//! unoptimized); `cargo test --release` exercises the full sweep.

use rlibm::gen::validate::{stratified_f32, validate};
use rlibm::mp::Func;

fn per_exponent() -> u32 {
    if cfg!(debug_assertions) {
        1
    } else {
        12
    }
}

fn check(f: Func) {
    let xs = stratified_f32(per_exponent(), 0xD00D + f.name().len() as u64);
    let report = validate(
        f,
        |x: f32| rlibm::math::eval_f32_by_name(f.name(), x).expect("known name"),
        xs.iter().copied(),
    );
    assert!(
        report.all_correct(),
        "{}: {} of {} wrong; first: {:?}",
        f.name(),
        report.wrong,
        report.total,
        report.examples.first().map(|e| {
            (
                f32::from_bits(e.0),
                f32::from_bits(e.1),
                f32::from_bits(e.2),
            )
        })
    );
}

#[test]
fn ln_correct() {
    check(Func::Ln);
}

#[test]
fn log2_correct() {
    check(Func::Log2);
}

#[test]
fn log10_correct() {
    check(Func::Log10);
}

#[test]
fn exp_correct() {
    check(Func::Exp);
}

#[test]
fn exp2_correct() {
    check(Func::Exp2);
}

#[test]
fn exp10_correct() {
    check(Func::Exp10);
}

#[test]
fn sinh_correct() {
    check(Func::Sinh);
}

#[test]
fn cosh_correct() {
    check(Func::Cosh);
}

#[test]
fn sinpi_correct() {
    check(Func::SinPi);
}

#[test]
fn cospi_correct() {
    check(Func::CosPi);
}

/// Dense sweeps over the trickiest strips: around 1.0 for logs (result
/// near zero), around 0 for exp-family (result near one), and around
/// integers for sinpi/cospi.
#[test]
fn dense_strips_near_hard_regions() {
    let n: u32 = if cfg!(debug_assertions) { 60 } else { 3000 };
    // Logs near 1.
    for i in 0..n {
        let x = f32::from_bits(1.0f32.to_bits() - n / 2 + i);
        for f in [Func::Ln, Func::Log2, Func::Log10] {
            let got = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
            let want: f32 = rlibm::mp::correctly_rounded(f, x);
            assert_eq!(got.to_bits(), want.to_bits(), "{}({x:e})", f.name());
        }
    }
    // exp family near 0 (both signs).
    for i in 0..n {
        for sign in [1.0f32, -1.0] {
            let x = sign * f32::from_bits(0x3980_0000 + i * 37); // ~1e-4 region
            for f in [Func::Exp, Func::Exp2, Func::Exp10, Func::Sinh, Func::Cosh] {
                let got = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
                let want: f32 = rlibm::mp::correctly_rounded(f, x);
                assert_eq!(got.to_bits(), want.to_bits(), "{}({x:e})", f.name());
            }
        }
    }
    // sinpi/cospi just off integers and half-integers.
    for i in 1..n / 2 {
        for base in [1.0f32, 0.5, 2.0, 7.5] {
            let x = base + i as f32 * f32::EPSILON;
            for f in [Func::SinPi, Func::CosPi] {
                let got = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
                let want: f32 = rlibm::mp::correctly_rounded(f, x);
                assert!(
                    got == want || (got == 0.0 && want == 0.0),
                    "{}({x:e}): {got:e} vs {want:e}",
                    f.name()
                );
            }
        }
    }
}

/// The overflow/underflow boundaries of every function, exactly.
#[test]
fn boundary_inputs_are_correct() {
    let mut cases: Vec<(Func, f32)> = Vec::new();
    for &x in &[88.72283f32, 88.72284, -103.972, -103.9723, -87.33655] {
        cases.push((Func::Exp, x));
    }
    for &x in &[127.99999f32, -148.99998, -149.0, -150.0, 128.0] {
        cases.push((Func::Exp2, x));
    }
    for &x in &[38.53183f32, -44.85345, -45.2] {
        cases.push((Func::Exp10, x));
    }
    for &x in &[89.41599f32, -89.41599, 88.0] {
        cases.push((Func::Sinh, x));
        cases.push((Func::Cosh, x));
    }
    for (f, x) in cases {
        let got = rlibm::math::eval_f32_by_name(f.name(), x).expect("known name");
        let want: f32 = rlibm::mp::correctly_rounded(f, x);
        assert!(
            got.to_bits() == want.to_bits() || (got == 0.0 && want == 0.0),
            "{}({x:e}): {got:e} vs {want:e}",
            f.name()
        );
    }
}
