//! Pinned edge-case regression suite backing the certification sweep
//! (`crates/core/src/certify.rs` + the `certify` bin).
//!
//! The sweep certifies the full 2^32 domain shard by shard; this suite
//! pins the exact bit patterns at every boundary the sweep crosses — the
//! special-case filter thresholds, subnormal edges, overflow cutoffs and
//! NaN/NaR payload space — as fast == dd == oracle triples, so any future
//! kernel or band change that re-breaks a boundary fails here in
//! milliseconds instead of minutes into a full sweep. Any mismatch a
//! full-domain run flushes out gets its bit pattern added to the tables
//! below alongside the source fix.

use rlibm_mp::{correctly_rounded, Func};
use rlibm_posit::Posit32;

/// Canonical NaN policy of the certification sweep: NaN payloads are
/// don't-cares, everything else is compared bit-exactly.
fn canon_f32(y: f32) -> u32 {
    if y.is_nan() {
        0x7FC0_0000
    } else {
        y.to_bits()
    }
}

/// Bit patterns within `steps` ulp-steps of `center`'s pattern (clamped
/// wrapping walk in bit space — every u32 is a legal probe input).
fn ulp_walk(center: f32, steps: i32) -> impl Iterator<Item = u32> {
    let c = center.to_bits();
    (-steps..=steps).map(move |d| c.wrapping_add(d as u32))
}

/// Bit patterns every float function must get right: signed zeros and
/// subnormal edges, the normal/subnormal crossover, extreme finites,
/// infinities, and NaNs across the payload space (both signaling and
/// quiet, both signs).
const F32_UNIVERSAL: &[u32] = &[
    0x0000_0000, // +0
    0x8000_0000, // -0
    0x0000_0001, // min subnormal
    0x8000_0001,
    0x007F_FFFF, // max subnormal
    0x807F_FFFF,
    0x0080_0000, // min normal
    0x8080_0000,
    0x3F80_0000, // 1.0
    0xBF80_0000,
    0x7F7F_FFFF, // max finite
    0xFF7F_FFFF,
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x7F80_0001, // signaling NaN, smallest payload
    0xFF80_0001,
    0x7FBF_FFFF, // signaling NaN, largest payload
    0x7FC0_0000, // quiet NaN
    0xFFC0_0000,
    0x7FFF_FFFF, // quiet NaN, all-ones payload
    0xFFFF_FFFF,
];

/// Function-specific boundary centers: the special-case filter and
/// overflow/underflow thresholds of each front end (`crates/libm/src/
/// float/*.rs`), probed a few ulps on both sides by the test below.
fn f32_centers(f: Func) -> Vec<f32> {
    let common: Vec<f32> = vec![0.5, 1.0, 2.0];
    let mut v = match f {
        // Log family: the subnormal upscaling path and exact powers.
        Func::Ln | Func::Log2 | Func::Log10 => {
            vec![1e-44, 1e-38, 4.0, 10.0, 1024.0, 3.4e38, -1.0]
        }
        // exp overflow ~ 88.72, flush-to-zero ~ -103.97.
        Func::Exp => vec![88.72284, -87.33655, -103.97208, 100.0, -200.0],
        // exp2 overflows at 128, subnormal results below -126, zero below -150.
        Func::Exp2 => vec![127.999_99, 128.0, -125.999_99, -126.0, -149.0, -150.0, 150.0],
        // exp10 overflows ~ 38.53, zero ~ -45.5.
        Func::Exp10 => vec![38.531_84, -37.929_78, -44.853_626, -45.5, 40.0, -50.0],
        // sinh/cosh overflow just past 89.41.
        Func::Sinh => vec![89.415_985, -89.415_985, 90.0, 2.44e-4, -2.44e-4],
        Func::Cosh => vec![89.415_985, -89.415_985, 90.0, 1.22e-4, -1.22e-4],
        // pi-trig: integer/half-integer thresholds at 2^22..2^24 and the
        // tiny-argument linear path near 2^-36.
        Func::SinPi | Func::CosPi => {
            vec![0.25, 1.5, 4194304.0, 8388607.5, 8388608.0, 16777216.0, 1.5e-11, -8388607.5]
        }
    };
    v.extend(common);
    v
}

#[test]
fn f32_boundary_patterns_fast_dd_oracle_agree() {
    for f in Func::ALL {
        let fast = rlibm_math::f32_fn_by_name(f.name()).expect("registry");
        let dd = rlibm_math::f32_dd_fn_by_name(f.name()).expect("registry");
        let mut patterns: Vec<u32> = F32_UNIVERSAL.to_vec();
        for c in f32_centers(f) {
            patterns.extend(ulp_walk(c, 4));
            patterns.extend(ulp_walk(-c, 4));
        }
        for bits in patterns {
            let x = f32::from_bits(bits);
            let yf = canon_f32(fast(x));
            let yd = canon_f32(dd(x));
            let yo = canon_f32(correctly_rounded::<f32>(f, x));
            assert_eq!(
                yf, yd,
                "{} fast vs dd mismatch at bit pattern {bits:#010x} (x = {x:e})",
                f.name()
            );
            assert_eq!(
                yd, yo,
                "{} dd vs oracle mismatch at bit pattern {bits:#010x} (x = {x:e})",
                f.name()
            );
        }
    }
}

/// Posit32 boundary patterns: zero, minpos/maxpos and neighbors, NaR, the
/// unity ring, saturation entries, and the regime-bit ladder (one pattern
/// per leading-run length on both sides of 1.0).
fn posit_patterns() -> Vec<u32> {
    let mut v: Vec<u32> = vec![
        0x0000_0000, // zero
        0x0000_0001, // minpos
        0x0000_0002,
        0x7FFF_FFFE,
        0x7FFF_FFFF, // maxpos
        0x8000_0000, // NaR
        0x8000_0001, // most negative finite
        0xFFFF_FFFF, // -minpos
        0x4000_0000, // 1.0
        0xC000_0000, // -1.0
    ];
    for d in 1..=4u32 {
        v.push(0x4000_0000 - d);
        v.push(0x4000_0000 + d);
        v.push(0xC000_0000u32.wrapping_sub(d));
        v.push(0xC000_0000 + d);
    }
    // Regime ladder: 0b01..., 0b001..., ... and the negative mirrors.
    for k in 1..=28 {
        v.push(1u32 << (30 - k) | 1);
        v.push((1u32 << (30 - k) | 1).wrapping_neg()); // two's complement negation
    }
    v
}

#[test]
fn posit32_boundary_patterns_fast_dd_oracle_agree() {
    for f in Func::POSIT {
        let fast = rlibm_math::posit32_fn_by_name(f.name()).expect("registry");
        let dd = rlibm_math::posit32_dd_fn_by_name(f.name()).expect("registry");
        for bits in posit_patterns() {
            let x = Posit32::from_bits(bits);
            let yf = fast(x).to_bits();
            let yd = dd(x).to_bits();
            let yo = correctly_rounded::<Posit32>(f, x).to_bits();
            assert_eq!(
                yf, yd,
                "{} fast vs dd mismatch at posit pattern {bits:#010x}",
                f.name()
            );
            assert_eq!(
                yd, yo,
                "{} dd vs oracle mismatch at posit pattern {bits:#010x}",
                f.name()
            );
        }
    }
}
